#include "check/oracles.hpp"

#include "common/logging.hpp"

namespace xrdma::check {

void ViolationLog::add(Nanos at, std::string what) {
  ++total_;
  if (entries_.size() < kMaxKept) {
    entries_.push_back(strfmt("t=%lld: ", static_cast<long long>(at)) +
                       std::move(what));
  }
}

// ---------------------------------------------------------------------------
// SpanLedger (oracle 6).

void SpanLedger::on_span_post(const core::SpanPostEvent& ev) {
  ++posts_by_id_[ev.trace_id];
  ++total_posts_;
}

void SpanLedger::on_span_deliver(const core::SpanDeliverEvent& ev) {
  ++total_delivers_;
  if (tolerate_ && tolerate_(ev)) {
    // The id itself is untrustworthy on this path (no end-to-end CRC under
    // a corruption schedule): exclude it from the post/deliver matching
    // rather than flag a ghost orphan.
    ++tolerated_delivers_;
    return;
  }
  ++delivers_by_id_[ev.trace_id];
}

void SpanLedger::check(ViolationLog& log, Nanos now) const {
  for (const auto& [id, count] : delivers_by_id_) {
    const auto it = posts_by_id_.find(id);
    if (it == posts_by_id_.end()) {
      log.add(now, strfmt("trace-span completeness: trace id %llx delivered "
                          "%u time(s) but never posted",
                          static_cast<unsigned long long>(id), count));
    }
  }
}

void SpanLedger::fold(std::uint64_t& digest) const {
  // FNV-1a over order-independent totals only; trace ids carry the
  // process-global context salt and would break same-process replays.
  const std::uint64_t values[4] = {
      total_posts_, total_delivers_,
      static_cast<std::uint64_t>(posts_by_id_.size()),
      static_cast<std::uint64_t>(delivers_by_id_.size())};
  for (const std::uint64_t v : values) {
    for (int b = 0; b < 8; ++b) {
      digest ^= (v >> (8 * b)) & 0xff;
      digest *= 0x100000001b3ULL;
    }
  }
}

// ---------------------------------------------------------------------------
// LiveOracle (oracles 2, 4, 5).

void LiveOracle::attach(std::vector<core::Context*> contexts,
                        std::vector<const rnic::Rnic*> nics,
                        ViolationLog* log) {
  contexts_ = std::move(contexts);
  nics_ = std::move(nics);
  log_ = log;
}

void LiveOracle::observe_channel(core::Channel& ch, Nanos now) {
  using core::Seq;
  const Seq tx_seq = ch.tx_seq();
  const Seq acked = ch.tx_acked();
  const Seq inflight = ch.inflight_msgs();

  // Window conservation: every claimed SEQ is either retired by a
  // cumulative ack or still occupies exactly one ring slot.
  if (tx_seq < acked || tx_seq - acked != inflight) {
    log_->add(now, strfmt("window conservation: channel %llu seq=%llu "
                          "acked=%llu but inflight=%llu",
                          static_cast<unsigned long long>(ch.id()),
                          static_cast<unsigned long long>(tx_seq),
                          static_cast<unsigned long long>(acked),
                          static_cast<unsigned long long>(inflight)));
  }
  if (inflight > ch.send_window_depth()) {
    log_->add(now, strfmt("window overrun: channel %llu inflight=%llu > "
                          "depth=%u",
                          static_cast<unsigned long long>(ch.id()),
                          static_cast<unsigned long long>(inflight),
                          ch.send_window_depth()));
  }
  const Seq wta = ch.rx_wta();
  const Seq rta = ch.rx_rta();
  if (rta > wta || wta - rta > ch.recv_window_depth()) {
    log_->add(now, strfmt("recv window edges: channel %llu wta=%llu "
                          "rta=%llu depth=%u",
                          static_cast<unsigned long long>(ch.id()),
                          static_cast<unsigned long long>(wta),
                          static_cast<unsigned long long>(rta),
                          ch.recv_window_depth()));
  }

  // Monotonicity: ACKED and RTA never move backwards — an entry retired
  // twice (double completion) or a window rebuilt wrong would show here.
  ChanMark& mark = marks_[{ch.context().node(), ch.id()}];
  if (acked < mark.acked) {
    log_->add(now, strfmt("acked edge moved backwards on channel %llu: "
                          "%llu -> %llu",
                          static_cast<unsigned long long>(ch.id()),
                          static_cast<unsigned long long>(mark.acked),
                          static_cast<unsigned long long>(acked)));
  }
  if (rta < mark.rta) {
    log_->add(now, strfmt("rta edge moved backwards on channel %llu: "
                          "%llu -> %llu",
                          static_cast<unsigned long long>(ch.id()),
                          static_cast<unsigned long long>(mark.rta),
                          static_cast<unsigned long long>(rta)));
  }
  mark.acked = std::max(mark.acked, acked);
  mark.rta = std::max(mark.rta, rta);

  // Oracle 7 (per channel): the bounded tx queue honours its caps. The one
  // deliberate exception is the progress guarantee — an empty queue always
  // admits one message, so a single entry may exceed the byte cap.
  const core::Config& cfg = ch.context().config();
  if (cfg.tx_queue_max_msgs > 0 &&
      ch.queued_msgs() > std::max<std::size_t>(cfg.tx_queue_max_msgs, 1)) {
    log_->add(now, strfmt("tx queue msg cap exceeded on channel %llu: "
                          "queued=%zu cap=%u",
                          static_cast<unsigned long long>(ch.id()),
                          ch.queued_msgs(), cfg.tx_queue_max_msgs));
  }
  if (cfg.tx_queue_max_bytes > 0 && ch.queued_msgs() > 1 &&
      ch.queued_bytes() > cfg.tx_queue_max_bytes) {
    log_->add(now, strfmt("tx queue byte cap exceeded on channel %llu: "
                          "queued=%llu cap=%llu",
                          static_cast<unsigned long long>(ch.id()),
                          static_cast<unsigned long long>(ch.queued_bytes()),
                          static_cast<unsigned long long>(
                              cfg.tx_queue_max_bytes)));
  }

  // Oracle 9: control-plane progress under backlog. An established RDMA
  // channel must show proof of life within one keepalive interval plus two
  // timeout windows — if the data plane is wedged (full queues, exhausted
  // pools), the zero-byte keepalive writes still go through; if the peer is
  // truly gone, keepalive declares peer_dead and the state leaves
  // established. Either way this bound holds.
  if (ch.state() == core::Channel::State::established && !ch.mocked() &&
      cfg.keepalive_intv > 0) {
    const Nanos last_sign =
        std::max({ch.last_tx_time(), ch.last_rx_time(), ch.last_alive_time()});
    const Nanos bound = cfg.keepalive_intv + 2 * cfg.keepalive_timeout;
    if (now - last_sign > bound) {
      log_->add(now, strfmt("control-plane stall on channel %llu: no sign of "
                            "life for %lld ns (bound %lld)",
                            static_cast<unsigned long long>(ch.id()),
                            static_cast<long long>(now - last_sign),
                            static_cast<long long>(bound)));
    }
  }
  // Oracle 9, fallback variant: a channel riding the TCP mock keeps the
  // same liveness contract through the NOP exchange. Our own NOP tx
  // refreshes last_tx constantly, so only receive-side proof counts here.
  if (ch.state() == core::Channel::State::established && ch.mocked() &&
      cfg.keepalive_intv > 0) {
    const Nanos last_sign =
        std::max(ch.last_rx_time(), ch.last_alive_time());
    const Nanos bound = cfg.keepalive_intv + 2 * cfg.keepalive_timeout;
    if (now - last_sign > bound) {
      log_->add(now, strfmt("fallback-stream stall on channel %llu: no sign "
                            "of life for %lld ns (bound %lld)",
                            static_cast<unsigned long long>(ch.id()),
                            static_cast<long long>(now - last_sign),
                            static_cast<long long>(bound)));
    }
  }
}

void LiveOracle::observe(Nanos now) {
  if (!log_) return;
  ++observations_;
  for (core::Context* ctx : contexts_) {
    // Flow-control cap (§V-C): posted-and-uncompleted WRs never exceed the
    // configured bound while the queuing policy is on.
    if (ctx->config().flowctl &&
        ctx->outstanding_wrs() > ctx->config().max_outstanding_wrs) {
      log_->add(now, strfmt("flow-control cap exceeded on node %u: "
                            "outstanding=%u cap=%u",
                            ctx->node(), ctx->outstanding_wrs(),
                            ctx->config().max_outstanding_wrs));
    }
    // Oracle 7 (aggregate): the context-wide queued-byte gauge is exactly
    // the sum over channels — a leak here would quietly disable the
    // ctx_tx_max_bytes admission check.
    std::uint64_t sum = 0;
    for (core::Channel* ch : ctx->channels()) sum += ch->queued_bytes();
    if (sum != ctx->queued_tx_bytes()) {
      log_->add(now, strfmt("tx queue accounting leak on node %u: "
                            "sum=%llu gauge=%llu",
                            ctx->node(), static_cast<unsigned long long>(sum),
                            static_cast<unsigned long long>(
                                ctx->queued_tx_bytes())));
    }

    // Oracle 8: memcache occupancy within budget, and the control-plane
    // reserve did its job — privileged allocations never fail while a
    // reserve is configured.
    for (core::MemCache* cache :
         {&ctx->ctrl_cache(), &ctx->data_cache()}) {
      const auto& ms = cache->stats();
      if (ms.in_use_bytes > ms.occupied_bytes ||
          ms.occupied_bytes > cache->budget_bytes()) {
        log_->add(now, strfmt("memcache bounds on node %u: in_use=%llu "
                              "occupied=%llu budget=%llu",
                              ctx->node(),
                              static_cast<unsigned long long>(ms.in_use_bytes),
                              static_cast<unsigned long long>(
                                  ms.occupied_bytes),
                              static_cast<unsigned long long>(
                                  cache->budget_bytes())));
      }
    }
    if (ctx->config().memcache_ctrl_reserve > 0 &&
        ctx->ctrl_cache().stats().privileged_alloc_fails > 0) {
      log_->add(now, strfmt("control plane starved on node %u despite "
                            "reserve: %llu privileged alloc failures",
                            ctx->node(),
                            static_cast<unsigned long long>(
                                ctx->ctrl_cache().stats()
                                    .privileged_alloc_fails)));
    }

    // Oracle 11: without a silencing fault in the schedule (host_down, or
    // drops that can exhaust the NIC retransmit budget), the health plane
    // must never declare a peer dead — bounded delays, brownouts and
    // corruption cannot mute a hardware-acked zero-byte keepalive.
    if (!silence_faults_injected_ && !false_dead_reported_ &&
        ctx->health().stats().dead_declarations > 0) {
      false_dead_reported_ = true;
      log_->add(now, strfmt("false dead declaration on node %u: %llu peers "
                            "declared dead with no silencing fault injected",
                            ctx->node(),
                            static_cast<unsigned long long>(
                                ctx->health().stats().dead_declarations)));
    }
    // Oracle 13: drain courtesy — the health plane counts every dead
    // declaration or breaker trip that lands inside a peer's announced
    // drain window. Graceful leave must read as `draining`, not failure.
    if (!drain_violation_reported_ &&
        ctx->health().stats().drain_violations > 0) {
      drain_violation_reported_ = true;
      log_->add(now, strfmt("drain courtesy violated on node %u: %llu "
                            "dead/breaker transitions against a peer inside "
                            "its announced drain window",
                            ctx->node(),
                            static_cast<unsigned long long>(
                                ctx->health().stats().drain_violations)));
    }
    // Oracle 14: doorbell-batch conservation. Every WR that ever entered a
    // batch accumulator must be accounted for: rung through a doorbell,
    // parked on the flow-control deferred queue, or dropped with a dead /
    // purged channel. An imbalance means a chain was lost in the
    // accumulator (messages that never hit the wire) or double-posted
    // (duplicate delivery one hop later).
    if (!batch_violation_reported_ &&
        ctx->batch_accumulated() !=
            ctx->batch_posted() + ctx->batch_deferred() +
                ctx->batch_dropped() + ctx->batch_pending()) {
      batch_violation_reported_ = true;
      log_->add(now, strfmt("batch conservation broken on node %u: "
                            "accumulated %llu != posted %llu + deferred %llu "
                            "+ dropped %llu + pending %llu",
                            ctx->node(),
                            static_cast<unsigned long long>(
                                ctx->batch_accumulated()),
                            static_cast<unsigned long long>(
                                ctx->batch_posted()),
                            static_cast<unsigned long long>(
                                ctx->batch_deferred()),
                            static_cast<unsigned long long>(
                                ctx->batch_dropped()),
                            static_cast<unsigned long long>(
                                ctx->batch_pending())));
    }
    // Oracle 12: breaker consistency — no CM connect attempt ever passed a
    // closed gate (the HealthMonitor counts them at the resume choke point).
    if (!breaker_violation_reported_ &&
        ctx->health().stats().breaker_violations > 0) {
      breaker_violation_reported_ = true;
      log_->add(now, strfmt("breaker violation on node %u: %llu CM connect "
                            "attempts issued while the peer's gate was closed",
                            ctx->node(),
                            static_cast<unsigned long long>(
                                ctx->health().stats().breaker_violations)));
    }

    for (core::Channel* ch : ctx->channels()) observe_channel(*ch, now);
  }
  if (!rnr_reported_) {
    for (const rnic::Rnic* nic : nics_) {
      if (nic->stats().rnr_naks_sent != 0 || nic->stats().rnr_events != 0) {
        log_->add(now, strfmt("RNR condition on node %u: naks_sent=%llu "
                              "rnr_events=%llu",
                              nic->node(),
                              static_cast<unsigned long long>(
                                  nic->stats().rnr_naks_sent),
                              static_cast<unsigned long long>(
                                  nic->stats().rnr_events)));
        rnr_reported_ = true;
      }
    }
  }
}

}  // namespace xrdma::check
