#include "check/schedule.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/rng.hpp"

namespace xrdma::check {

namespace {

constexpr const char* kOpNames[] = {"open", "close", "send", "call"};

std::optional<OpKind> op_kind_from_string(std::string_view name) {
  for (std::size_t i = 0; i < 4; ++i) {
    if (name == kOpNames[i]) return static_cast<OpKind>(i);
  }
  return std::nullopt;
}

struct SlotKey {
  std::uint8_t src, dst, slot;
  bool operator<(const SlotKey& o) const {
    return std::tie(src, dst, slot) < std::tie(o.src, o.dst, o.slot);
  }
};

/// Payload sizes that straddle every interesting protocol edge: the empty
/// and 1-byte messages, the 4 KB eager cutoff, the fragment boundary of the
/// run's frag_size, and the 64 KB boundary the default production config
/// fragments at.
std::vector<std::uint32_t> size_buckets(const ScheduleParams& p) {
  const std::uint32_t fb = p.frag_size;
  return {0,      1,          3,      64,         1024,   4095,
          4096,   4097,       8192,   fb - 1,     fb,     fb + 1,
          65535,  65536,      65537,  3 * fb + 7, 100000, 4 * fb + 1};
}

}  // namespace

const char* to_string(OpKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < 4 ? kOpNames[i] : "unknown";
}

Schedule generate_schedule(std::uint64_t seed, ScheduleParams params) {
  if (params.num_hosts < 2) params.num_hosts = 2;
  Schedule s;
  s.seed = seed;
  s.params = params;
  Rng rng(seed ^ 0xc0ffee5eedULL);

  // Draw all op times first so ops can be assigned kinds in time order
  // (slot-open tracking needs chronology).
  std::vector<Nanos> times(params.num_ops);
  for (auto& t : times) {
    t = static_cast<Nanos>(rng.next_below(
        static_cast<std::uint64_t>(params.horizon)));
  }
  std::sort(times.begin(), times.end());

  const std::vector<std::uint32_t> sizes = size_buckets(params);
  std::map<SlotKey, bool> open;
  std::vector<SlotKey> ever_opened;
  for (std::uint32_t i = 0; i < params.num_ops; ++i) {
    Op op;
    op.at = times[i];
    if (params.incast) {
      // N→1 storm: every flow converges on node 0.
      op.src = static_cast<std::uint8_t>(
          1 + rng.next_below(params.num_hosts - 1));
      op.dst = 0;
    } else {
      op.src = static_cast<std::uint8_t>(rng.next_below(params.num_hosts));
      op.dst = static_cast<std::uint8_t>(
          (op.src + 1 + rng.next_below(params.num_hosts - 1)) %
          params.num_hosts);
    }
    op.slot = static_cast<std::uint8_t>(rng.next_below(params.slots_per_pair));
    const SlotKey key{op.src, op.dst, op.slot};

    if (!open[key]) {
      op.kind = OpKind::open;
      open[key] = true;
      ever_opened.push_back(key);
    } else {
      const std::uint64_t r = rng.next_below(100);
      if (r < 7) {
        op.kind = OpKind::close;
        open[key] = false;
      } else if (r < 27) {
        op.kind = OpKind::call;
      } else {
        op.kind = OpKind::send;
      }
    }
    if (op.kind == OpKind::send || op.kind == OpKind::call) {
      if (params.batch_shape > 0 && rng.next_below(100) < 80) {
        // Batching shape: bias toward inline-eligible eager sizes
        // (straddling the default inline_max = 256) so multi-WR chains
        // actually form and the inline path carries real traffic.
        static const std::uint32_t kSmall[] = {0,   1,   63,  64, 65,
                                               128, 255, 256, 257};
        op.size = kSmall[rng.next_below(9)];
      } else {
        op.size = sizes[rng.next_below(sizes.size())];
      }
      op.tag = rng.next_u64() | 1;
    }
    s.ops.push_back(op);
  }

  for (std::uint32_t i = 0; i < params.num_faults; ++i) {
    FaultOp f;
    // Leave the first stretch of the horizon fault-free so the earliest
    // opens establish before the chaos starts.
    f.at = params.horizon / 8 +
           static_cast<Nanos>(rng.next_below(
               static_cast<std::uint64_t>(params.horizon * 7 / 8)));
    f.node = static_cast<std::uint8_t>(rng.next_below(params.num_hosts));
    std::uint64_t r = rng.next_below(100);
    using analysis::FaultKind;
    // corruption_shape boosts the corrupt share (the run exists to exercise
    // the integrity plane); with_corruption keeps the legacy 12% mix.
    const std::uint64_t corrupt_share =
        params.corruption_shape > 0 ? 30 : (params.with_corruption ? 12 : 0);
    if (r < corrupt_share) {
      f.kind = 3 * r < 2 * corrupt_share ? FaultKind::ingress_corrupt
                                         : FaultKind::egress_corrupt;
    } else if (r < 24) {
      f.kind = FaultKind::ingress_drop;
    } else if (r < 42) {
      f.kind = FaultKind::ingress_delay;
    } else if (r < 58) {
      f.kind = FaultKind::egress_drop;
    } else if (r < 70) {
      f.kind = FaultKind::egress_delay;
    } else if (r < 88) {
      f.kind = FaultKind::qp_kill;
    } else if (r < 94) {
      f.kind = FaultKind::cm_refuse;
    } else {
      f.kind = FaultKind::cm_timeout;
    }
    if (f.kind == FaultKind::qp_kill) {
      if (ever_opened.empty()) {
        f.kind = FaultKind::ingress_drop;
      } else {
        const SlotKey key = ever_opened[rng.next_below(ever_opened.size())];
        f.src = key.src;
        f.dst = key.dst;
        f.slot = key.slot;
        f.node = key.src;  // the kill is injected at the dialing side
      }
    }
    if (f.kind == FaultKind::ingress_delay ||
        f.kind == FaultKind::egress_delay) {
      f.delay = micros(rng.uniform(20, 300));
    }
    s.faults.push_back(f);
  }
  if (params.flap_cycles > 0) {
    // Flap shape: one victim host toggles down/up at a 50% duty cycle
    // across the back stretch of the horizon. Down and up always come in
    // pairs so quiesce starts from a fully-alive cluster.
    const auto victim =
        static_cast<std::uint8_t>(rng.next_below(params.num_hosts));
    const Nanos start = params.horizon / 4;
    const Nanos span = params.horizon * 5 / 8;
    const Nanos segment = span / params.flap_cycles;
    for (std::uint32_t i = 0; i < params.flap_cycles; ++i) {
      FaultOp down;
      down.at = start + static_cast<Nanos>(i) * segment;
      down.kind = analysis::FaultKind::host_down;
      down.node = victim;
      s.faults.push_back(down);
      FaultOp up = down;
      up.at = down.at + segment / 2;
      up.kind = analysis::FaultKind::host_up;
      s.faults.push_back(up);
    }
  }
  if (params.batch_shape > 0) {
    // Mid-chain kills: a qp_kill ~300 ns after a send lands inside the
    // send-path delay / accumulator window, so whole chains die between
    // accumulation and doorbell — the conservation oracle (14) must still
    // balance every WR as posted, deferred or dropped.
    std::uint32_t added = 0;
    for (const Op& op : s.ops) {
      if (op.kind != OpKind::send) continue;
      if (rng.next_below(100) >= 10) continue;
      FaultOp f;
      f.at = op.at + 300;
      f.kind = analysis::FaultKind::qp_kill;
      f.src = op.src;
      f.dst = op.dst;
      f.slot = op.slot;
      f.node = op.src;
      s.faults.push_back(f);
      if (++added >= 6) break;  // a handful keeps quiesce tractable
    }
  }
  std::stable_sort(s.faults.begin(), s.faults.end(),
                   [](const FaultOp& a, const FaultOp& b) {
                     return a.at < b.at;
                   });
  return s;
}

std::string serialize_schedule(const Schedule& s) {
  std::ostringstream out;
  out << "xcheck v1\n";
  out << "seed " << s.seed << "\n";
  const ScheduleParams& p = s.params;
  out << "params hosts " << p.num_hosts << " slots " << p.slots_per_pair
      << " numops " << p.num_ops << " numfaults " << p.num_faults
      << " horizon " << p.horizon << " corrupt " << (p.with_corruption ? 1 : 0)
      << " window " << p.window_depth << " wrs " << p.max_outstanding_wrs
      << " mask " << p.trace_sample_mask << " frag " << p.frag_size
      << " txcap " << p.tx_queue_cap << " incast " << (p.incast ? 1 : 0)
      << " membudget " << p.mem_budget_mb << " flap " << p.flap_cycles
      << " brownout " << p.brownout_delay_us << " adaptive "
      << (p.health_adaptive ? 1 : 0) << " drain " << p.drain_cycles
      << " mixedver " << (p.mixed_versions ? 1 : 0) << " batching "
      << p.batch_shape << " crcshape " << p.corruption_shape << "\n";
  for (const Op& op : s.ops) {
    out << "op " << op.at << " " << to_string(op.kind) << " "
        << unsigned{op.src} << " " << unsigned{op.dst} << " "
        << unsigned{op.slot} << " " << op.size << " " << op.tag << "\n";
  }
  for (const FaultOp& f : s.faults) {
    out << "fault " << f.at << " " << analysis::to_string(f.kind) << " "
        << unsigned{f.node} << " " << unsigned{f.src} << " "
        << unsigned{f.dst} << " " << unsigned{f.slot} << " " << f.delay
        << "\n";
  }
  out << "end\n";
  return out.str();
}

bool deserialize_schedule(const std::string& text, Schedule& out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "xcheck v1") return false;
  Schedule s;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "seed") {
      ls >> s.seed;
    } else if (word == "params") {
      ScheduleParams& p = s.params;
      std::string key;
      std::uint64_t value = 0;
      while (ls >> key >> value) {
        if (key == "hosts") p.num_hosts = static_cast<std::uint32_t>(value);
        else if (key == "slots") p.slots_per_pair = static_cast<std::uint32_t>(value);
        else if (key == "numops") p.num_ops = static_cast<std::uint32_t>(value);
        else if (key == "numfaults") p.num_faults = static_cast<std::uint32_t>(value);
        else if (key == "horizon") p.horizon = static_cast<Nanos>(value);
        else if (key == "corrupt") p.with_corruption = value != 0;
        else if (key == "window") p.window_depth = static_cast<std::uint32_t>(value);
        else if (key == "wrs") p.max_outstanding_wrs = static_cast<std::uint32_t>(value);
        else if (key == "mask") p.trace_sample_mask = static_cast<std::uint32_t>(value);
        else if (key == "frag") p.frag_size = static_cast<std::uint32_t>(value);
        else if (key == "txcap") p.tx_queue_cap = static_cast<std::uint32_t>(value);
        else if (key == "incast") p.incast = value != 0;
        else if (key == "membudget") p.mem_budget_mb = static_cast<std::uint32_t>(value);
        else if (key == "flap") p.flap_cycles = static_cast<std::uint32_t>(value);
        else if (key == "brownout") p.brownout_delay_us = static_cast<std::uint32_t>(value);
        else if (key == "adaptive") p.health_adaptive = value != 0;
        else if (key == "drain") p.drain_cycles = static_cast<std::uint32_t>(value);
        else if (key == "mixedver") p.mixed_versions = value != 0;
        else if (key == "batching") p.batch_shape = static_cast<std::uint32_t>(value);
        else if (key == "crcshape") p.corruption_shape = static_cast<std::uint32_t>(value);
        else return false;
      }
    } else if (word == "op") {
      Op op;
      std::string kind;
      unsigned src = 0, dst = 0, slot = 0;
      ls >> op.at >> kind >> src >> dst >> slot >> op.size >> op.tag;
      if (!ls) return false;
      const auto k = op_kind_from_string(kind);
      if (!k) return false;
      op.kind = *k;
      op.src = static_cast<std::uint8_t>(src);
      op.dst = static_cast<std::uint8_t>(dst);
      op.slot = static_cast<std::uint8_t>(slot);
      s.ops.push_back(op);
    } else if (word == "fault") {
      FaultOp f;
      std::string kind;
      unsigned node = 0, src = 0, dst = 0, slot = 0;
      ls >> f.at >> kind >> node >> src >> dst >> slot >> f.delay;
      if (!ls) return false;
      const auto k = analysis::fault_kind_from_string(kind);
      if (!k) return false;
      f.kind = *k;
      f.node = static_cast<std::uint8_t>(node);
      f.src = static_cast<std::uint8_t>(src);
      f.dst = static_cast<std::uint8_t>(dst);
      f.slot = static_cast<std::uint8_t>(slot);
      s.faults.push_back(f);
    } else if (word == "end") {
      saw_end = true;
      break;
    } else {
      return false;
    }
  }
  if (!saw_end) return false;
  out = std::move(s);
  return true;
}

bool save_schedule(const Schedule& s, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize_schedule(s);
  return static_cast<bool>(out);
}

bool load_schedule(const std::string& path, Schedule& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  return deserialize_schedule(text.str(), out);
}

Schedule without_items(const Schedule& s,
                       const std::vector<std::size_t>& drop) {
  std::vector<bool> dead(s.items(), false);
  for (std::size_t i : drop) {
    if (i < dead.size()) dead[i] = true;
  }
  Schedule out;
  out.seed = s.seed;
  out.params = s.params;
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    if (!dead[i]) out.ops.push_back(s.ops[i]);
  }
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    if (!dead[s.ops.size() + i]) out.faults.push_back(s.faults[i]);
  }
  return out;
}

}  // namespace xrdma::check
