// X-Ray flight recorder (§VI): a per-context, fixed-size binary ring of
// control-plane events that is always on. Every channel state transition,
// recovery-ladder step, health grade change, breaker/hold-down event,
// overload decision, CM handshake outcome and a sampled slice of the
// message/WR lifecycle lands here as one 32-byte timestamped record.
//
// Contexts are single-threaded run-to-completion event loops, so the ring
// is lock-free by construction: a plain array and a monotonically rising
// head counter, no atomics, no allocation after construction. Appending is
// one predictable branch plus six stores — cheap enough to leave enabled
// in production, which is the whole point: when a channel dies or a peer
// is declared dead, the last few thousand decisions that led there are
// already in memory, waiting to be flushed.
//
// On a trigger (channel death, peer dead, oracle failure, watchdog trip,
// xr_adm dump) the ring plus a metrics snapshot is encoded into a
// self-describing `.xrd` dump: the file carries its own event-name table,
// so tools/xr_triage can decode dumps from builds with a different event
// enum. Records carry only simulated time and deterministic payloads, so
// same-seed replays produce bit-identical dumps — X-Check locks this in.
//
// This header is deliberately self-contained (no core/ includes): core
// headers include it to embed the recorder without cycles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace xrdma::core {
class Context;
}

namespace xrdma::analysis {

/// Event vocabulary. Stable small integers: they are written into dumps
/// (alongside a name table, so decoding survives renumbering, but keeping
/// them append-only keeps old dumps trivially comparable).
enum class RecEvent : std::uint16_t {
  none = 0,
  // Channel lifecycle. code=new state, a=old state, b=errc cause.
  chan_state = 1,
  // Recovery ladder. code varies: attempt number / errc.
  recovery_start = 2,      // code=errc fault, a=recovery budget
  recovery_attempt = 3,    // code=attempt number
  recovery_resumed = 4,    // code=attempt number, a=recovery latency ns
  fallback_switch = 5,     // ladder exhausted, going to TCP
  fallback_attach = 6,     // TCP mock attached
  fallback_restore = 7,    // back on RDMA
  breaker_fastfail = 8,    // attempt swallowed by an open breaker
  // Health plane. chan field carries the peer id.
  health_grade = 9,        // code=new PeerState, a=old PeerState
  peer_dead = 10,          // code=reporting channel id
  breaker_open = 11,
  breaker_close = 12,
  flap = 13,               // a=flap count
  holddown = 14,           // code=new level, a=hold-down nanos
  cm_connect = 15,         // code=errc, chan=peer
  cm_resume = 16,          // code=errc, chan=peer
  // Overload plane.
  overload_shed = 17,      // hard pressure: message refused at enqueue
  overload_would_block = 18,  // bounded tx queue at cap
  overload_nak_tx = 19,    // receiver memory NAK sent, a=seq
  overload_pull_defer = 20,   // rendezvous pull deferred, a=seq
  overload_mem_defer = 21,    // sender tx deferred on alloc failure
  pressure = 22,           // code=new MemPressure, a=old
  // Context plane.
  watchdog_trip = 23,      // poll-gap watchdog: a=gap ns, b=threshold ns
  msg_tx_sample = 24,      // sampled send path, a=seq, b=bytes
  wr_sample = 25,          // sampled WR completion, code=WrInfo kind, a=seq
  // Memory cache. code distinguishes ctrl(0)/data(1) caches.
  mem_grow = 26,           // a=occupied bytes after
  mem_shrink = 27,         // a=occupied bytes after
  mem_denial = 28,         // reserve denial, a=requested len
  // Dump bookkeeping.
  trigger = 29,            // dump trigger fired; code=TrigReason
  // Lifecycle plane (graceful drain + protocol negotiation).
  lifecycle_state = 30,    // code=new Lifecycle, a=old Lifecycle
  drain_rx = 31,           // peer announced drain; chan=peer, a=retry-after ns
  hdr_version_reject = 32, // decode refused a version; code=HdrDecode, a=len
  proto_negotiated = 33,   // code=effective version, a=features, b=peer range
  batch_flush = 34,        // chained doorbell; code=WRs posted, a=bytes,
                           // b=(deferred<<16)|dropped for that flush
  // End-to-end integrity plane (e2e_crc).
  crc_fail_rx = 35,        // frame dropped on CRC mismatch; seq, a=payload_len
  integrity_nak_tx = 36,   // receiver NAK'd a corrupted frame; seq
  integrity_nak_rx = 37,   // sender received an integrity NAK; seq
  integrity_retransmit = 38,  // window entry re-sent on integrity NAK; seq,
                              // code=retry count for the NAK'd entry
  integrity_exhausted = 39,   // retry budget spent; seq, code=budget
  corruption_storm = 40,   // storm detector graded a peer; chan=peer,
                           // a=CRC failures in the scan
};

/// Why a dump was cut. Written as Rec::code of the `trigger` record and as
/// the dump's reason string.
enum class TrigReason : std::uint16_t {
  manual = 0,          // xr_adm dump / explicit API call
  channel_death = 1,   // a channel reached terminal error
  peer_dead = 2,       // health plane declared a peer dead
  oracle_failure = 3,  // X-Check invariant violated
  watchdog = 4,        // poll-gap watchdog tripped
};

const char* to_string(RecEvent e);
const char* to_string(TrigReason r);

/// One record: 32 bytes, no padding, no pointers, no wall-clock time.
struct Rec {
  Nanos t = 0;             // simulated time of the event
  std::uint16_t type = 0;  // RecEvent
  std::uint16_t code = 0;  // event-specific discriminator
  std::uint32_t chan = 0;  // channel id or peer id, event-specific
  std::uint64_t a = 0;     // event-specific payloads
  std::uint64_t b = 0;
};
static_assert(sizeof(Rec) == 32, "Rec must stay a packed 32-byte record");

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two so the ring index is a mask.
  explicit FlightRecorder(std::uint32_t capacity = 4096);

  /// The hot-path append. One branch when disabled; overwrites the oldest
  /// record once the ring is full. Safe to call from inside a dump hook
  /// (a dump reads a copy, never the live ring storage).
  void log(Nanos t, RecEvent type, std::uint16_t code = 0,
           std::uint32_t chan = 0, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    Rec& r = ring_[static_cast<std::size_t>(head_) & mask_];
    r.t = t;
    r.type = static_cast<std::uint16_t>(type);
    r.code = code;
    r.chan = chan;
    r.a = a;
    r.b = b;
    ++head_;
  }

  /// Sampling gate for per-message lifecycle events: true for one in
  /// (mask+1) ids. Disabled recorder samples nothing.
  bool sample(std::uint64_t id) const {
    return enabled_ && (id & sample_mask_) == 0;
  }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  /// mask must be 2^k - 1; e.g. 63 samples one message in 64.
  void set_sample_mask(std::uint32_t mask) { sample_mask_ = mask; }
  std::uint32_t sample_mask() const { return sample_mask_; }

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(ring_.size());
  }
  /// Total records ever appended (wrap-aware callers compare with size()).
  std::uint64_t appended() const { return head_; }
  /// Records currently held (== capacity once wrapped).
  std::size_t size() const;
  /// Copy of the live ring, oldest record first.
  std::vector<Rec> records() const;
  void clear() { head_ = 0; }

 private:
  std::vector<Rec> ring_;
  std::size_t mask_;
  std::uint64_t head_ = 0;
  std::uint32_t sample_mask_ = 63;
  bool enabled_ = true;
};

/// A decoded (or to-be-encoded) dump: what the node knew when the trigger
/// fired. `metrics` is the scalar snapshot of the context's registry.
struct Dump {
  std::uint32_t version = 1;
  std::uint32_t node = 0;
  Nanos dumped_at = 0;
  std::string reason;
  std::vector<Rec> records;
  std::vector<std::pair<std::string, double>> metrics;
  /// Event-name table carried by the file; keyed by raw RecEvent value.
  std::vector<std::pair<std::uint16_t, std::string>> event_names;

  /// Name for a record's type: from the file's table when present (so
  /// foreign dumps stay readable), else this build's enum.
  std::string event_name(std::uint16_t type) const;
};

/// Self-describing binary encoding ("XRD1"). Deterministic: equal Dumps
/// encode to equal bytes.
std::vector<std::uint8_t> encode_xrd(const Dump& dump);
bool decode_xrd(const std::uint8_t* data, std::size_t len, Dump& out);

bool write_xrd_file(const std::string& path, const Dump& dump);
bool decode_xrd_file(const std::string& path, Dump& out);

/// Cut a dump from a live context: ring contents plus the scalar metrics
/// snapshot of its ContextMetrics registry, stamped with sim time.
Dump snapshot_dump(core::Context& ctx, const std::string& reason);

}  // namespace xrdma::analysis
