// Clock synchronization service (§VI-A method I).
//
// The latency-decomposition tracing needs the sender/receiver clock offset
// Toff. This service estimates it NTP-style over an X-RDMA channel: the
// client stamps t1, the server replies with its local t2, the client
// stamps t3 on receipt; offset = t2 - (t1+t3)/2 for the probe with the
// smallest RTT (least queueing noise). The result feeds
// Context::set_peer_clock_offset.
#pragma once

#include <functional>

#include "core/context.hpp"

namespace xrdma::analysis {

struct ClockSyncResult {
  Nanos offset = 0;    // peer_clock - local_clock
  Nanos best_rtt = 0;  // RTT of the sample used
  int probes = 0;
};

/// Server side: answer clock probes on this channel. Installs an on_msg
/// handler; use a dedicated channel (or install before app handlers and
/// chain). Returns immediately.
void serve_clock_sync(core::Channel& channel);

/// Client side: run `probes` round trips on `channel`, then invoke `done`
/// and (by default) install the offset into the channel's context.
void run_clock_sync(core::Channel& channel, int probes,
                    std::function<void(ClockSyncResult)> done,
                    bool install_offset = true);

}  // namespace xrdma::analysis
