#include "analysis/recorder.hpp"

#include <cstdio>
#include <cstring>

#include "analysis/metrics.hpp"
#include "core/context.hpp"

namespace xrdma::analysis {

const char* to_string(RecEvent e) {
  switch (e) {
    case RecEvent::none: return "none";
    case RecEvent::chan_state: return "chan_state";
    case RecEvent::recovery_start: return "recovery_start";
    case RecEvent::recovery_attempt: return "recovery_attempt";
    case RecEvent::recovery_resumed: return "recovery_resumed";
    case RecEvent::fallback_switch: return "fallback_switch";
    case RecEvent::fallback_attach: return "fallback_attach";
    case RecEvent::fallback_restore: return "fallback_restore";
    case RecEvent::breaker_fastfail: return "breaker_fastfail";
    case RecEvent::health_grade: return "health_grade";
    case RecEvent::peer_dead: return "peer_dead";
    case RecEvent::breaker_open: return "breaker_open";
    case RecEvent::breaker_close: return "breaker_close";
    case RecEvent::flap: return "flap";
    case RecEvent::holddown: return "holddown";
    case RecEvent::cm_connect: return "cm_connect";
    case RecEvent::cm_resume: return "cm_resume";
    case RecEvent::overload_shed: return "overload_shed";
    case RecEvent::overload_would_block: return "overload_would_block";
    case RecEvent::overload_nak_tx: return "overload_nak_tx";
    case RecEvent::overload_pull_defer: return "overload_pull_defer";
    case RecEvent::overload_mem_defer: return "overload_mem_defer";
    case RecEvent::pressure: return "pressure";
    case RecEvent::watchdog_trip: return "watchdog_trip";
    case RecEvent::msg_tx_sample: return "msg_tx_sample";
    case RecEvent::wr_sample: return "wr_sample";
    case RecEvent::mem_grow: return "mem_grow";
    case RecEvent::mem_shrink: return "mem_shrink";
    case RecEvent::mem_denial: return "mem_denial";
    case RecEvent::trigger: return "trigger";
    case RecEvent::lifecycle_state: return "lifecycle_state";
    case RecEvent::drain_rx: return "drain_rx";
    case RecEvent::hdr_version_reject: return "hdr_version_reject";
    case RecEvent::proto_negotiated: return "proto_negotiated";
    case RecEvent::batch_flush: return "batch_flush";
    case RecEvent::crc_fail_rx: return "crc_fail_rx";
    case RecEvent::integrity_nak_tx: return "integrity_nak_tx";
    case RecEvent::integrity_nak_rx: return "integrity_nak_rx";
    case RecEvent::integrity_retransmit: return "integrity_retransmit";
    case RecEvent::integrity_exhausted: return "integrity_exhausted";
    case RecEvent::corruption_storm: return "corruption_storm";
  }
  return "unknown";
}

const char* to_string(TrigReason r) {
  switch (r) {
    case TrigReason::manual: return "manual";
    case TrigReason::channel_death: return "channel_death";
    case TrigReason::peer_dead: return "peer_dead";
    case TrigReason::oracle_failure: return "oracle_failure";
    case TrigReason::watchdog: return "watchdog";
  }
  return "unknown";
}

namespace {

constexpr std::uint16_t kLastEvent =
    static_cast<std::uint16_t>(RecEvent::corruption_storm);

std::size_t round_pow2(std::uint32_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::uint32_t capacity)
    : ring_(round_pow2(capacity == 0 ? 1 : capacity)),
      mask_(ring_.size() - 1) {}

std::size_t FlightRecorder::size() const {
  return head_ < ring_.size() ? static_cast<std::size_t>(head_) : ring_.size();
}

std::vector<Rec> FlightRecorder::records() const {
  std::vector<Rec> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(first + i) & mask_]);
  }
  return out;
}

std::string Dump::event_name(std::uint16_t type) const {
  for (const auto& [id, name] : event_names) {
    if (id == type) return name;
  }
  return to_string(static_cast<RecEvent>(type));
}

// --- .xrd encoding -------------------------------------------------------
//
// Little-endian, length-prefixed, no padding:
//   magic "XRD1" | u32 version | u32 node | i64 dumped_at
//   u16 reason_len | reason bytes
//   u32 name_count | { u16 id, u16 len, bytes } * name_count
//   u32 rec_count  | { i64 t, u16 type, u16 code, u32 chan, u64 a, u64 b } *
//   u32 metric_count | { u16 len, bytes, u64 value_bits } * metric_count
// Every field is emitted explicitly (no struct memcpy), so the bytes are a
// pure function of the Dump contents — the determinism oracle depends on it.

namespace {

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_str(std::vector<std::uint8_t>& b, const std::string& s) {
  const std::uint16_t n =
      static_cast<std::uint16_t>(s.size() > 0xffff ? 0xffff : s.size());
  put_u16(b, n);
  b.insert(b.end(), s.begin(), s.begin() + n);
}

struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  bool u16(std::uint16_t& v) {
    if (left < 2) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    left -= 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (left < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (left < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }
  bool str(std::string& s) {
    std::uint16_t n = 0;
    if (!u16(n) || left < n) return false;
    s.assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }
};

constexpr char kMagic[4] = {'X', 'R', 'D', '1'};

}  // namespace

std::vector<std::uint8_t> encode_xrd(const Dump& dump) {
  std::vector<std::uint8_t> b;
  b.reserve(64 + dump.records.size() * sizeof(Rec));
  b.insert(b.end(), kMagic, kMagic + 4);
  put_u32(b, dump.version);
  put_u32(b, dump.node);
  put_u64(b, static_cast<std::uint64_t>(dump.dumped_at));
  put_str(b, dump.reason);

  // Self-description: the full event vocabulary of the writing build.
  put_u32(b, kLastEvent + 1);
  for (std::uint16_t id = 0; id <= kLastEvent; ++id) {
    put_u16(b, id);
    put_str(b, to_string(static_cast<RecEvent>(id)));
  }

  put_u32(b, static_cast<std::uint32_t>(dump.records.size()));
  for (const Rec& r : dump.records) {
    put_u64(b, static_cast<std::uint64_t>(r.t));
    put_u16(b, r.type);
    put_u16(b, r.code);
    put_u32(b, r.chan);
    put_u64(b, r.a);
    put_u64(b, r.b);
  }

  put_u32(b, static_cast<std::uint32_t>(dump.metrics.size()));
  for (const auto& [name, value] : dump.metrics) {
    put_str(b, name);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    put_u64(b, bits);
  }
  return b;
}

bool decode_xrd(const std::uint8_t* data, std::size_t len, Dump& out) {
  Cursor c{data, len};
  if (c.left < 4 || std::memcmp(c.p, kMagic, 4) != 0) return false;
  c.p += 4;
  c.left -= 4;
  out = Dump{};
  std::uint64_t t = 0;
  if (!c.u32(out.version) || !c.u32(out.node) || !c.u64(t)) return false;
  out.dumped_at = static_cast<Nanos>(t);
  if (!c.str(out.reason)) return false;

  std::uint32_t names = 0;
  if (!c.u32(names)) return false;
  out.event_names.reserve(names);
  for (std::uint32_t i = 0; i < names; ++i) {
    std::uint16_t id = 0;
    std::string name;
    if (!c.u16(id) || !c.str(name)) return false;
    out.event_names.emplace_back(id, std::move(name));
  }

  std::uint32_t recs = 0;
  if (!c.u32(recs)) return false;
  out.records.reserve(recs);
  for (std::uint32_t i = 0; i < recs; ++i) {
    Rec r;
    std::uint64_t rt = 0;
    if (!c.u64(rt) || !c.u16(r.type) || !c.u16(r.code) || !c.u32(r.chan) ||
        !c.u64(r.a) || !c.u64(r.b)) {
      return false;
    }
    r.t = static_cast<Nanos>(rt);
    out.records.push_back(r);
  }

  std::uint32_t metrics = 0;
  if (!c.u32(metrics)) return false;
  out.metrics.reserve(metrics);
  for (std::uint32_t i = 0; i < metrics; ++i) {
    std::string name;
    std::uint64_t bits = 0;
    if (!c.str(name) || !c.u64(bits)) return false;
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    out.metrics.emplace_back(std::move(name), value);
  }
  return true;
}

bool write_xrd_file(const std::string& path, const Dump& dump) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::vector<std::uint8_t> bytes = encode_xrd(dump);
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

bool decode_xrd_file(const std::string& path, Dump& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return decode_xrd(bytes.data(), bytes.size(), out);
}

Dump snapshot_dump(core::Context& ctx, const std::string& reason) {
  Dump d;
  d.node = ctx.node();
  d.dumped_at = ctx.engine().now();
  d.reason = reason;
  d.records = ctx.recorder().records();
  ContextMetrics cm(ctx);
  const MetricsRegistry::Snapshot snap = cm.registry().snapshot();
  d.metrics.assign(snap.values.begin(), snap.values.end());
  return d;
}

}  // namespace xrdma::analysis
