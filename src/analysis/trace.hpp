// Latency-decomposition tracing (§VI-A): stamp → collection →
// decomposition → export.
//
// The SpanCollector is the analysis-side sink for the raw span events the
// data plane emits (core/span.hpp). It stitches the request and response
// halves of each traced message into one chain keyed by trace_id,
// corrects cross-host timestamps with the clock-sync offsets, and
// decomposes every complete chain into the paper's stages:
//
//   post       sender software send path (enqueue -> WR at the NIC)
//   wire       NIC + fabric (WR posted -> first byte at the receiver)
//   pickup     receiver poll pickup + assembly (arrive -> delivered)
//   handler    server application time (delivered -> response posted)
//   rsp_post / rsp_wire / rsp_pickup   the response's same three stages
//   total      end-to-end (request posted -> response delivered; for
//              one-way messages, request posted -> delivered)
//
// Exporters: per-stage p50/p99 histograms published into a
// MetricsRegistry ("trace.<stage>"), a plain-text decomposition report,
// a chrome://tracing JSON timeline, and a poll-gap watchdog report built
// on ContextStats::slow_polls.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/context.hpp"
#include "core/span.hpp"

namespace xrdma::analysis {

/// One traced message (plus, for RPC, its response) reassembled from the
/// raw span events. All stamps are the emitting host's local clock.
struct SpanChain {
  std::uint64_t trace_id = 0;
  net::NodeId src = net::kInvalidNode;  // request sender
  net::NodeId dst = net::kInvalidNode;  // request receiver
  std::uint32_t req_bytes = 0;
  std::uint32_t rsp_bytes = 0;
  bool is_rpc = false;  // request half carried kFlagRpcReq

  // Request (or one-way message) half.
  Nanos t_post = 0, t_wire = 0, t_arrive = 0, t_deliver = 0;
  // Response half (RPC only).
  Nanos rsp_t_post = 0, rsp_t_wire = 0, rsp_t_arrive = 0, rsp_t_deliver = 0;

  bool has_post = false, has_deliver = false;
  bool has_rsp_post = false, has_rsp_deliver = false;

  /// Request posted and delivered (a complete one-way trace).
  bool forward_complete() const { return has_post && has_deliver; }
  /// Full RPC chain: both halves posted and delivered.
  bool rpc_complete() const {
    return forward_complete() && has_rsp_post && has_rsp_deliver;
  }
  /// Complete for its kind: RPC chains need the response half.
  bool complete() const {
    return is_rpc || has_rsp_post ? rpc_complete() : forward_complete();
  }
};

/// One decomposed stage of a chain, clock-offset corrected.
struct Stage {
  const char* name;
  Nanos duration;
};

class SpanCollector : public core::SpanSink {
 public:
  /// Install this collector as the context's span sink. One collector may
  /// serve any number of contexts (it models the centralized backend).
  void attach(core::Context& ctx);

  /// Register how far `node`'s clock runs ahead of the collector's
  /// reference clock. Feed clock-sync results here; unregistered nodes
  /// are assumed synchronized (offset 0).
  void set_node_offset(net::NodeId node, Nanos offset);
  Nanos node_offset(net::NodeId node) const;

  // SpanSink.
  void on_span_post(const core::SpanPostEvent& ev) override;
  void on_span_deliver(const core::SpanDeliverEvent& ev) override;

  std::size_t size() const { return chains_.size(); }
  std::size_t complete_chains() const;
  const SpanChain* find(std::uint64_t trace_id) const;
  const std::vector<SpanChain>& chains() const { return chains_; }
  void clear();

  /// Stage decomposition of one complete chain, offset-corrected. The
  /// stages partition [t_post, end]: their durations sum exactly to
  /// total() when the registered offsets are exact.
  std::vector<Stage> decompose(const SpanChain& chain) const;
  /// End-to-end latency of a complete chain on the request sender's clock.
  Nanos total(const SpanChain& chain) const;

  /// Record per-stage durations of every complete chain into `reg` as
  /// histograms named "trace.<stage>" (plus "trace.total").
  void publish(MetricsRegistry& reg) const;
  /// Per-stage p50/p99 table (via publish into a scratch registry).
  std::string decomposition_report() const;
  /// chrome://tracing "traceEvents" JSON: one complete-event ("ph":"X")
  /// per stage, pid = host, tid = trace id, ts/dur in microseconds on the
  /// corrected reference timeline.
  std::string chrome_trace_json() const;

 private:
  SpanChain& chain_for(std::uint64_t trace_id);
  Nanos corrected(net::NodeId node, Nanos t) const;

  std::vector<SpanChain> chains_;                     // insertion order
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::map<net::NodeId, Nanos> offsets_;
};

/// Poll-interval watchdog (§VI-A method II): per-context polling health,
/// flagging contexts whose poll gap exceeded Config::polling_warn_cycle
/// (ContextStats::slow_polls / worst_poll_gap).
std::string poll_watchdog_report(const std::vector<core::Context*>& ctxs);

}  // namespace xrdma::analysis
