// Monitor (§VI-B): the centralized collector behind the paper's online
// dashboards (Fig. 3, Fig. 11, Fig. 12).
//
// Callers register named samplers (bandwidth, QP counts, memory occupancy,
// CNP counters, ...); the monitor polls them on a fixed period and keeps
// the time series. Benches print the series; tests assert on them. A log
// sink collects the slow-operation records the data plane emits.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/time.hpp"
#include "sim/timer.hpp"

namespace xrdma::analysis {

class ContextMetrics;

struct Sample {
  Nanos at = 0;
  double value = 0;
};

struct Series {
  std::string name;
  std::vector<Sample> samples;

  double last() const { return samples.empty() ? 0 : samples.back().value; }
  double max() const;
  double min() const;
  double mean() const;
  /// Jitter metric used by the anti-jitter evaluation: coefficient of
  /// variation (stddev / mean) over the series.
  double cov() const;
};

class Monitor {
 public:
  Monitor(sim::Engine& engine, Nanos period);
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Register a sampler; polled every period once start()ed.
  void track(const std::string& name, std::function<double()> sampler);
  /// Track one scalar (counter/gauge) out of a context's MetricsRegistry
  /// bridge — the same source XR-Stat and XR-Perf read. `metrics` must
  /// outlive the monitor; refresh is per-tick idempotent, so tracking many
  /// names on one bridge costs one stats sweep per sample.
  void track_metric(ContextMetrics& metrics, const std::string& name);
  void start();
  void stop();
  /// Take one sample of everything right now (benches call this at exact
  /// phase boundaries).
  void sample_now();

  const Series& series(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Collected warn/error log records (slow polls, slow assemblies, ...).
  const std::vector<LogRecord>& logs() const { return logs_; }
  std::size_t count_logs(const std::string& substring) const;

  /// Render all series as aligned columns (one row per sample time).
  std::string table() const;

 private:
  sim::Engine& engine_;
  sim::PeriodicTimer timer_;
  std::vector<std::pair<std::string, std::function<double()>>> samplers_;
  std::map<std::string, Series> series_;
  std::vector<LogRecord> logs_;
  int log_sink_id_ = -1;
};

}  // namespace xrdma::analysis
