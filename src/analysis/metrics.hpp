// Metrics registry (§VI-B): one named store of counters, gauges and
// histograms that XR-Stat, XR-Perf, the Monitor and the trace exporters
// all read, instead of each tool taking its own ad-hoc copy of the stats
// structs.
//
// Counters and gauges are plain references into the registry — updating
// one is an increment/assignment, no lookup on the hot path once the
// handle is taken. snapshot()/delta_since() give the cheap
// snapshot-and-delta semantics the Monitor's periodic sampling and the
// benches' phase boundaries need.
//
// ContextMetrics bridges a core::Context into a registry: it aggregates
// ChannelStats across all channels plus the ContextStats counters under
// stable names, refreshing at most once per simulated timestamp so many
// samplers can share one bridge.
//
// Naming convention (locked by analysis_exposition_test): every metric is
// `<plane>.<name>` with an optional `<plane>.peer.<node>.<name>` per-peer
// form. Planes: `chan` (data-path aggregates), `ctx` (poll loop + lifecycle),
// `recovery` (retry ladder + fallback), `overload` (backpressure + shedding),
// `mem` (MR pools), `health` (failure detector + breaker). Names are
// lowercase [a-z0-9_]; gauges carry a unit suffix (_us, _mb, _bytes) when
// the unit is not obvious.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/time.hpp"
#include "core/context.hpp"

namespace xrdma::analysis {

class MetricsRegistry {
 public:
  /// Monotonic event count. Returns a stable reference: callers may cache
  /// it and increment without further lookups.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Point-in-time value (occupancy, rate, temperature...).
  double& gauge(const std::string& name) { return gauges_[name]; }
  /// Value distribution (latencies, sizes).
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool has(const std::string& name) const;
  /// Scalar read by name: counter or gauge; 0 when absent.
  double value(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  std::vector<std::string> names() const;

  /// All scalars (counters + gauges) at one instant.
  struct Snapshot {
    std::map<std::string, double> values;
    double value(const std::string& name) const;
  };
  Snapshot snapshot() const;
  /// Per-name difference (now - prev); names absent from prev count from 0.
  Snapshot delta_since(const Snapshot& prev) const;

  /// Human-readable dump: scalars one per line, then histogram summaries.
  std::string render() const;
  void reset();

  /// Typed read-only views (the Prometheus exposition needs to tell
  /// counters from gauges to emit the right # TYPE line).
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Bridges one Context's stats structs into a MetricsRegistry. refresh()
/// re-exports; it is idempotent within one simulated timestamp, so any
/// number of Monitor samplers / tools can call it per tick for free.
class ContextMetrics {
 public:
  explicit ContextMetrics(core::Context& ctx) : ctx_(ctx) {}

  /// Refresh and expose the registry (the common read path).
  MetricsRegistry& registry() {
    refresh();
    return reg_;
  }
  /// The registry without refreshing (for snapshot-and-delta callers that
  /// already refreshed this tick).
  MetricsRegistry& raw() { return reg_; }
  void refresh();

  core::Context& context() { return ctx_; }

 private:
  core::Context& ctx_;
  MetricsRegistry reg_;
  Nanos last_refresh_ = -1;
};

}  // namespace xrdma::analysis
