// Filter (§VI-C): the programmable fault-injection subsystem.
//
// The paper's Filter component sits in the message path and lets tests and
// operators inject the failures that production RDMA actually exhibits —
// lost and delayed packets, flipped bits, dying QPs, an unresponsive
// connection manager — so the self-healing machinery (QP resume,
// retransmit-from-window, TCP fallback) can be exercised deterministically
// in simulation.
//
// A Filter owns the three hook points of one Context:
//   - ingress  (Context::set_filter):        drop / delay / corrupt received
//     wire messages before the window sees them;
//   - egress   (Context::set_egress_filter): drop / delay / corrupt messages
//     between the send window and the QP;
//   - control  (CmService::set_fault_hook):  refuse or time out this node's
//     CM connect attempts (which is what turns QP resume into fallback
//     escalation).
// plus direct QP kills (modify-to-error, exactly what a NIC firmware fault
// or cable pull produces).
//
// Rules are declarative and seeded: the same seed replays the same fault
// schedule, so every soak run is reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/context.hpp"
#include "sim/timer.hpp"

namespace xrdma::analysis {

enum class FaultKind : std::uint8_t {
  ingress_drop,
  ingress_delay,
  ingress_corrupt,
  egress_drop,
  egress_delay,
  egress_corrupt,
  qp_kill,     // accounting only (kills are injected via kill_qp*)
  cm_refuse,   // CM answers REP(reject)
  cm_timeout,  // CM REQ goes unanswered (full connect timeout)
  host_down,   // accounting only (the harness silences the host's stacks)
  host_up,     // accounting only (the harness revives the host)
};
inline constexpr std::size_t kNumFaultKinds = 11;

struct FaultRule {
  FaultKind kind = FaultKind::ingress_drop;
  double probability = 1.0;     // per-message / per-connect chance
  std::uint64_t channel_id = 0; // 0 = any channel (ignored for cm_* kinds)
  std::int32_t budget = -1;     // max injections; -1 = unlimited
  Nanos delay = 0;              // *_delay: max extra latency, drawn uniform
                                // in [1,delay]; 0 means a 50us default
};

/// Stable textual names for FaultKind — the vocabulary of the X-Check
/// replay-file format, so a dumped fault schedule survives enum reordering.
const char* to_string(FaultKind kind);
std::optional<FaultKind> fault_kind_from_string(std::string_view name);

/// One-line textual form of a rule ("kind prob channel budget delay_ns"),
/// and its inverse. Used by the X-Check schedule (de)serializer.
std::string format_rule(const FaultRule& rule);
std::optional<FaultRule> parse_rule(std::string_view line);

class Filter {
 public:
  /// Installs this filter on `ctx`'s ingress/egress hooks and on the CM
  /// fault hook (gated to connects originating from ctx's node). The
  /// destructor uninstalls everything.
  Filter(core::Context& ctx, std::uint64_t seed = 1);
  ~Filter();
  Filter(const Filter&) = delete;
  Filter& operator=(const Filter&) = delete;

  /// Returns a rule id usable with remove_rule.
  std::size_t add_rule(FaultRule rule);
  void remove_rule(std::size_t id);
  void clear();

  /// Immediate one-shot QP kill: drives the channel's QP to the error
  /// state, exactly as a NIC fault would.
  void kill_qp(core::Channel& ch);
  /// Deferred one-shot QP kill by channel id (skipped if the channel is no
  /// longer established by then).
  void kill_qp_after(std::uint64_t channel_id, Nanos delay);

  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  core::Context& context() { return ctx_; }
  Rng& rng() { return rng_; }

 private:
  struct Slot {
    FaultRule rule;
    bool active = false;
  };

  core::Context::FilterDecision consult(bool egress, core::Channel& ch);
  bool rule_fires(Slot& slot, std::uint64_t channel_id);
  void note(FaultKind kind) { ++injected_[static_cast<std::size_t>(kind)]; }

  core::Context& ctx_;
  Rng rng_;
  std::vector<Slot> rules_;
  std::uint64_t injected_[kNumFaultKinds] = {};
  std::vector<std::unique_ptr<sim::DeadlineTimer>> kill_timers_;
  // Per-channel release floors keep delay injection order-preserving: a
  // delayed message holds back everything behind it on the same channel
  // (go-back-N semantics — RC would treat an overtaken packet as lost).
  std::map<std::uint64_t, Nanos> ingress_floor_;
  std::map<std::uint64_t, Nanos> egress_floor_;
};

/// A seeded random fault schedule for soak testing: probabilistic ingress
/// drops/delays plus QP kills at randomized intervals against randomly
/// chosen established channels. Deterministic for a given seed.
class FaultSchedule {
 public:
  struct Config {
    std::uint64_t seed = 42;
    Nanos mean_kill_interval = millis(5);
    double drop_prob = 0.0;   // ingress drop probability while running
    double delay_prob = 0.0;  // ingress delay probability while running
    Nanos max_delay = micros(200);
    std::uint32_t max_kills = 8;  // stop killing after this many
    // Brownout shape: sustained bounded delay on BOTH directions — latency
    // inflation that must never trip the failure detector (oracle 11).
    double brownout_prob = 0.0;
    Nanos brownout_delay = 0;
    // Flap shape: toggle the flap hook down for flap_down out of every
    // flap_period (the caller binds the hook to host liveness or a link).
    Nanos flap_period = 0;
    Nanos flap_down = 0;
  };

  FaultSchedule(Filter& filter, Config cfg);
  ~FaultSchedule();

  /// Target of the flap shape: called with true when the link/host goes
  /// down, false when it comes back. Must be set before start() for
  /// flap_period to have any effect.
  void set_flap_hook(std::function<void(bool down)> hook) {
    flap_hook_ = std::move(hook);
  }

  void start();
  /// Removes the probabilistic rules and stops scheduling kills/flaps (a
  /// down flap target is brought back up). Already dropped messages stay
  /// dropped — follow with a flush (e.g. one final kill per channel) if the
  /// workload must complete.
  void stop();
  std::uint32_t kills() const { return kills_; }
  std::uint32_t flap_cycles() const { return flap_cycles_; }

 private:
  void arm_next_kill();
  void fire_kill();
  void flap_tick();

  Filter& filter_;
  Config cfg_;
  Rng rng_;
  std::unique_ptr<sim::DeadlineTimer> kill_timer_;
  std::unique_ptr<sim::DeadlineTimer> flap_timer_;
  std::function<void(bool)> flap_hook_;
  std::vector<std::size_t> rule_ids_;
  std::uint32_t kills_ = 0;
  std::uint32_t flap_cycles_ = 0;
  bool flap_is_down_ = false;
  bool running_ = false;
};

}  // namespace xrdma::analysis
