// Mock (§VI-C): live fallback of an X-RDMA channel onto kernel TCP.
//
// For rare RDMA anomalies (protocol stack collapse, pathological incast)
// the paper temporarily reroutes a channel's traffic over TCP without the
// application noticing. Here: the server side listens on a TCP port; the
// client side connects, identifies which channel it is speaking for (by
// the connection token, which survives QP loss), and both ends install a
// tx_override so encoded messages travel the TCP stream (length-prefixed
// frames) while the seq-ack protocol above stays untouched.
// restore_rdma() switches back.
//
// enable_auto() wires this into channel recovery: once a channel exhausts
// its QP-resume budget it escalates here automatically, and the restore
// hook migrates it back when the background RDMA probe succeeds.
#pragma once

#include <functional>
#include <memory>

#include "core/context.hpp"
#include "tcpsim/tcp.hpp"

namespace xrdma::analysis {

class MockFallback {
 public:
  /// Server side: accept TCP fallback connections for channels owned by
  /// `ctx`. Keep the object alive while fallback may occur.
  MockFallback(core::Context& ctx, tcpsim::TcpStack& tcp, std::uint16_t port);

  /// Client side: switch `ch` onto TCP toward the peer's fallback port.
  /// `done` fires once both ends have flipped.
  static void switch_to_tcp(core::Channel& ch, tcpsim::TcpStack& tcp,
                            std::uint16_t peer_port,
                            std::function<void(Errc)> done);

  /// Switch a mocked channel back to its RDMA QP (either side; the stream
  /// is closed, which flips the peer too).
  static void restore_rdma(core::Channel& ch);

  /// Install automatic escalation on `ctx`: channels that exhaust their
  /// recovery budget switch onto TCP toward `peer_port` (the peer must run
  /// a MockFallback server there), and restore through restore_rdma once
  /// RDMA heals.
  static void enable_auto(core::Context& ctx, tcpsim::TcpStack& tcp,
                          std::uint16_t peer_port);

 private:
  core::Context& ctx_;
};

}  // namespace xrdma::analysis
