// Mock (§VI-C): live fallback of an X-RDMA channel onto kernel TCP.
//
// For rare RDMA anomalies (protocol stack collapse, pathological incast)
// the paper temporarily reroutes a channel's traffic over TCP without the
// application noticing. Here: the server side listens on a TCP port; the
// client side connects, identifies which channel it is speaking for (by
// the server's QP number), and both ends install a tx_override so encoded
// messages travel the TCP stream (length-prefixed frames) while the
// seq-ack protocol above stays untouched. restore_rdma() switches back.
#pragma once

#include <functional>
#include <memory>

#include "core/context.hpp"
#include "tcpsim/tcp.hpp"

namespace xrdma::analysis {

class MockFallback {
 public:
  /// Server side: accept TCP fallback connections for channels owned by
  /// `ctx`. Keep the object alive while fallback may occur.
  MockFallback(core::Context& ctx, tcpsim::TcpStack& tcp, std::uint16_t port);

  /// Client side: switch `ch` onto TCP toward the peer's fallback port.
  /// `done` fires once both ends have flipped.
  static void switch_to_tcp(core::Channel& ch, tcpsim::TcpStack& tcp,
                            std::uint16_t peer_port,
                            std::function<void(Errc)> done);

  /// Switch a mocked channel back to its RDMA QP (either side; the stream
  /// is closed, which flips the peer too).
  static void restore_rdma(core::Channel& ch);

 private:
  core::Context& ctx_;
};

}  // namespace xrdma::analysis
