#include "analysis/exposition.hpp"

#include <cctype>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace xrdma::analysis {

namespace {

// Splits the per-peer infix out of a dotted name: "health.peer.3.phi"
// -> family "health.peer.phi", label peer="3". Returns false when the name
// has no `.peer.<digits>.` infix.
bool split_peer(const std::string& name, std::string& family,
                std::string& peer) {
  const std::string infix = ".peer.";
  const auto pos = name.find(infix);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + infix.size();
  std::size_t digits = 0;
  while (i + digits < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i + digits]))) {
    ++digits;
  }
  if (digits == 0 || i + digits >= name.size() || name[i + digits] != '.') {
    return false;
  }
  peer = name.substr(i, digits);
  family = name.substr(0, pos + infix.size() - 1) +
           name.substr(i + digits);  // keep "peer", drop ".<N>"
  return true;
}

std::string mangle(const std::string& dotted) {
  std::string out = "xrdma_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) out.push_back(c == '.' ? '_' : c);
  return out;
}

struct Sample {
  std::string labels;  // "" or "{peer=\"3\"}"
  std::string value;
};

struct Family {
  const char* type = "counter";
  std::vector<Sample> samples;
};

std::string format_gauge(double v) {
  std::string s = strfmt("%.9g", v);
  return s;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string family, peer;
  if (split_peer(name, family, peer)) return mangle(family);
  return mangle(name);
}

std::string prometheus_render(const MetricsRegistry& registry) {
  // Collect into families first: the per-peer gauges of one name must land
  // under a single # TYPE header even though the registry stores them as
  // separate dotted entries.
  std::map<std::string, Family> families;

  for (const auto& [name, v] : registry.counters()) {
    Family& f = families[prometheus_name(name)];
    f.type = "counter";
    f.samples.push_back(
        {"", strfmt("%llu", static_cast<unsigned long long>(v))});
  }
  for (const auto& [name, v] : registry.gauges()) {
    std::string base, peer;
    std::string labels;
    if (split_peer(name, base, peer)) labels = "{peer=\"" + peer + "\"}";
    Family& f = families[prometheus_name(name)];
    f.type = "gauge";
    f.samples.push_back({std::move(labels), format_gauge(v)});
  }
  for (const auto& [name, h] : registry.histograms()) {
    Family& f = families[mangle(name)];
    f.type = "summary";
    for (double q : {0.5, 0.9, 0.99, 1.0}) {
      const std::int64_t v =
          q >= 1.0 ? h.max() : (h.count() ? h.percentile(q * 100.0) : 0);
      f.samples.push_back({strfmt("{quantile=\"%g\"}", q),
                           strfmt("%lld", static_cast<long long>(v))});
    }
  }

  std::string out;
  for (const auto& [fname, fam] : families) {
    out += strfmt("# TYPE %s %s\n", fname.c_str(), fam.type);
    for (const Sample& s : fam.samples) {
      out += fname + s.labels + " " + s.value + "\n";
    }
    // A summary's _count rides outside the family samples (it has the
    // family name plus a suffix, so it cannot share the sample loop).
    if (fam.type == std::string("summary")) {
      for (const auto& [name, h] : registry.histograms()) {
        if (mangle(name) == fname) {
          out += strfmt("%s_count %llu\n", fname.c_str(),
                        static_cast<unsigned long long>(h.count()));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace xrdma::analysis
