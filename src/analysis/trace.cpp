#include "analysis/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace xrdma::analysis {

void SpanCollector::attach(core::Context& ctx) { ctx.set_span_sink(this); }

void SpanCollector::set_node_offset(net::NodeId node, Nanos offset) {
  offsets_[node] = offset;
}

Nanos SpanCollector::node_offset(net::NodeId node) const {
  auto it = offsets_.find(node);
  return it == offsets_.end() ? 0 : it->second;
}

Nanos SpanCollector::corrected(net::NodeId node, Nanos t) const {
  return t - node_offset(node);
}

SpanChain& SpanCollector::chain_for(std::uint64_t trace_id) {
  auto it = index_.find(trace_id);
  if (it != index_.end()) return chains_[it->second];
  index_[trace_id] = chains_.size();
  chains_.emplace_back();
  chains_.back().trace_id = trace_id;
  return chains_.back();
}

void SpanCollector::on_span_post(const core::SpanPostEvent& ev) {
  SpanChain& c = chain_for(ev.trace_id);
  if (ev.is_rpc_rsp) {
    c.rsp_t_post = ev.t_post;
    c.rsp_t_wire = ev.t_wire;
    c.rsp_bytes = ev.bytes;
    c.has_rsp_post = true;
    // The responder is the request's receiver; fill in if the request
    // half was not observed (collector attached server-side only).
    if (c.dst == net::kInvalidNode) c.dst = ev.node;
    if (c.src == net::kInvalidNode) c.src = ev.peer;
  } else {
    c.t_post = ev.t_post;
    c.t_wire = ev.t_wire;
    c.req_bytes = ev.bytes;
    c.has_post = true;
    c.src = ev.node;
    c.dst = ev.peer;
    if (ev.is_rpc_req) c.is_rpc = true;
  }
}

void SpanCollector::on_span_deliver(const core::SpanDeliverEvent& ev) {
  SpanChain& c = chain_for(ev.trace_id);
  if (ev.is_rpc_rsp) {
    c.rsp_t_arrive = ev.t_arrive;
    c.rsp_t_deliver = ev.t_deliver;
    c.rsp_bytes = ev.bytes;
    c.has_rsp_deliver = true;
    if (c.src == net::kInvalidNode) c.src = ev.node;
    if (c.dst == net::kInvalidNode) c.dst = ev.peer;
  } else {
    c.t_arrive = ev.t_arrive;
    c.t_deliver = ev.t_deliver;
    c.req_bytes = ev.bytes;
    c.has_deliver = true;
    if (c.dst == net::kInvalidNode) c.dst = ev.node;
    if (c.src == net::kInvalidNode) c.src = ev.peer;
    if (ev.is_rpc_req) c.is_rpc = true;
  }
}

std::size_t SpanCollector::complete_chains() const {
  std::size_t n = 0;
  for (const auto& c : chains_) n += c.complete() ? 1 : 0;
  return n;
}

const SpanChain* SpanCollector::find(std::uint64_t trace_id) const {
  auto it = index_.find(trace_id);
  return it == index_.end() ? nullptr : &chains_[it->second];
}

void SpanCollector::clear() {
  chains_.clear();
  index_.clear();
}

std::vector<Stage> SpanCollector::decompose(const SpanChain& c) const {
  std::vector<Stage> out;
  if (!c.forward_complete()) return out;
  // Stages partition [t_post, end] on the corrected timeline, so the
  // cross-host corrections cancel pairwise and the durations telescope to
  // total() exactly when the registered offsets are exact.
  out.push_back({"post", c.t_wire - c.t_post});
  out.push_back(
      {"wire", corrected(c.dst, c.t_arrive) - corrected(c.src, c.t_wire)});
  out.push_back({"pickup", c.t_deliver - c.t_arrive});
  if (!c.rpc_complete()) return out;
  out.push_back({"handler", c.rsp_t_post - c.t_deliver});
  out.push_back({"rsp_post", c.rsp_t_wire - c.rsp_t_post});
  out.push_back({"rsp_wire", corrected(c.src, c.rsp_t_arrive) -
                                 corrected(c.dst, c.rsp_t_wire)});
  out.push_back({"rsp_pickup", c.rsp_t_deliver - c.rsp_t_arrive});
  return out;
}

Nanos SpanCollector::total(const SpanChain& c) const {
  if (c.rpc_complete()) return c.rsp_t_deliver - c.t_post;  // same clock
  if (c.forward_complete()) {
    return corrected(c.dst, c.t_deliver) - corrected(c.src, c.t_post);
  }
  return 0;
}

void SpanCollector::publish(MetricsRegistry& reg) const {
  for (const auto& c : chains_) {
    if (!c.complete()) continue;
    for (const Stage& s : decompose(c)) {
      reg.histogram(std::string("trace.") + s.name).record(s.duration);
    }
    reg.histogram("trace.total").record(total(c));
    ++reg.counter("trace.chains");
  }
}

std::string SpanCollector::decomposition_report() const {
  MetricsRegistry reg;
  publish(reg);
  static const char* kOrder[] = {"post",     "wire",     "pickup",
                                 "handler",  "rsp_post", "rsp_wire",
                                 "rsp_pickup", "total"};
  std::ostringstream os;
  os << strfmt("%-12s %8s %10s %10s %10s %10s\n", "stage", "n", "p50(us)",
               "p99(us)", "mean(us)", "max(us)");
  for (const char* stage : kOrder) {
    const Histogram* h = reg.find_histogram(std::string("trace.") + stage);
    if (!h || h->count() == 0) continue;
    os << strfmt("%-12s %8llu %10.2f %10.2f %10.2f %10.2f\n", stage,
                 static_cast<unsigned long long>(h->count()),
                 to_micros(h->percentile(50)), to_micros(h->percentile(99)),
                 h->mean() / 1e3, to_micros(h->max()));
  }
  return os.str();
}

std::string SpanCollector::chrome_trace_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& c : chains_) {
    if (!c.complete()) continue;
    // Per-stage start times and owning hosts on the corrected timeline.
    struct Ev {
      const char* name;
      net::NodeId pid;
      Nanos start;
      Nanos dur;
    };
    std::vector<Ev> evs;
    evs.push_back({"post", c.src, corrected(c.src, c.t_post),
                   c.t_wire - c.t_post});
    evs.push_back({"wire", c.src, corrected(c.src, c.t_wire),
                   corrected(c.dst, c.t_arrive) - corrected(c.src, c.t_wire)});
    evs.push_back({"pickup", c.dst, corrected(c.dst, c.t_arrive),
                   c.t_deliver - c.t_arrive});
    if (c.rpc_complete()) {
      evs.push_back({"handler", c.dst, corrected(c.dst, c.t_deliver),
                     c.rsp_t_post - c.t_deliver});
      evs.push_back({"rsp_post", c.dst, corrected(c.dst, c.rsp_t_post),
                     c.rsp_t_wire - c.rsp_t_post});
      evs.push_back({"rsp_wire", c.dst, corrected(c.dst, c.rsp_t_wire),
                     corrected(c.src, c.rsp_t_arrive) -
                         corrected(c.dst, c.rsp_t_wire)});
      evs.push_back({"rsp_pickup", c.src, corrected(c.src, c.rsp_t_arrive),
                     c.rsp_t_deliver - c.rsp_t_arrive});
    }
    for (const Ev& e : evs) {
      if (!first) os << ",";
      first = false;
      // tid folds the trace id into chrome's int range; the full id rides
      // in args. Negative durations (inexact offsets) are clamped.
      os << strfmt(
          "{\"name\":\"%s\",\"cat\":\"xrdma\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%llu,"
          "\"args\":{\"trace_id\":\"0x%llx\",\"bytes\":%u}}",
          e.name, to_micros(e.start),
          to_micros(std::max<Nanos>(e.dur, 0)), e.pid,
          static_cast<unsigned long long>(c.trace_id & 0xffffffu),
          static_cast<unsigned long long>(c.trace_id),
          e.name[0] == 'r' || e.name[0] == 'h' ? c.rsp_bytes : c.req_bytes);
    }
  }
  os << "]}";
  return os.str();
}

std::string poll_watchdog_report(const std::vector<core::Context*>& ctxs) {
  std::ostringstream os;
  os << strfmt("%-6s %12s %12s %12s %14s %14s %-8s\n", "node", "polls",
               "empty", "slow_polls", "worst_gap", "warn_cycle", "verdict");
  for (core::Context* ctx : ctxs) {
    if (!ctx) continue;
    const auto& cs = ctx->stats();
    const bool stalled = cs.slow_polls > 0;
    os << strfmt("%-6u %12llu %12llu %12llu %14s %14s %-8s\n", ctx->node(),
                 static_cast<unsigned long long>(cs.polls),
                 static_cast<unsigned long long>(cs.empty_polls),
                 static_cast<unsigned long long>(cs.slow_polls),
                 format_duration(cs.worst_poll_gap).c_str(),
                 format_duration(ctx->config().polling_warn_cycle).c_str(),
                 stalled ? "STALL" : "OK");
  }
  return os.str();
}

}  // namespace xrdma::analysis
