#include "analysis/clock_sync.hpp"

#include <cstring>
#include <memory>

namespace xrdma::analysis {

namespace {
Buffer encode_time(Nanos t) {
  Buffer b = Buffer::make(8);
  std::memcpy(b.data(), &t, 8);
  return b;
}

Nanos decode_time(const Buffer& b) {
  Nanos t = 0;
  if (b.size() >= 8 && b.data()) std::memcpy(&t, b.data(), 8);
  return t;
}
}  // namespace

void serve_clock_sync(core::Channel& channel) {
  channel.set_on_msg([](core::Channel& ch, core::Msg&& msg) {
    if (!msg.is_rpc_req) return;
    ch.reply(msg.rpc_id, encode_time(ch.context().local_time()));
  });
}

void run_clock_sync(core::Channel& channel, int probes,
                    std::function<void(ClockSyncResult)> done,
                    bool install_offset) {
  struct State {
    ClockSyncResult result;
    int remaining = 0;
    bool have_sample = false;
  };
  auto state = std::make_shared<State>();
  state->remaining = probes;
  state->result.probes = probes;

  // Issue probes sequentially: back-to-back probes would queue behind each
  // other and inflate RTTs.
  auto issue = std::make_shared<std::function<void()>>();
  // The stored lambda must not capture `issue` strongly: it would be a
  // self-reference cycle that leaks the whole chain if the protocol is
  // abandoned mid-probe. The pending RPC callback carries the strong ref.
  *issue = [state, weak = std::weak_ptr<std::function<void()>>(issue),
            &channel, done = std::move(done), install_offset] {
    auto issue = weak.lock();
    if (!issue) return;
    core::Context& ctx = channel.context();
    const Nanos t1 = ctx.local_time();
    channel.call(
        encode_time(t1),
        [state, issue, &channel, done, install_offset, t1](Result<core::Msg> r) {
          core::Context& ctx = channel.context();
          if (r.ok()) {
            const Nanos t3 = ctx.local_time();
            const Nanos t2 = decode_time(r.value().payload);
            const Nanos rtt = t3 - t1;
            const Nanos offset = t2 - (t1 + t3) / 2;
            if (!state->have_sample || rtt < state->result.best_rtt) {
              state->have_sample = true;
              state->result.best_rtt = rtt;
              state->result.offset = offset;
            }
          }
          if (--state->remaining > 0) {
            (*issue)();
            return;
          }
          if (install_offset && state->have_sample) {
            ctx.set_peer_clock_offset(state->result.offset);
          }
          if (done) done(state->result);
        });
  };
  (*issue)();
}

}  // namespace xrdma::analysis
