#include "analysis/metrics.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace xrdma::analysis {

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.count(name) || gauges_.count(name) ||
         histograms_.count(name);
}

double MetricsRegistry::value(const std::string& name) const {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return static_cast<double>(it->second);
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) return it->second;
  return 0;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [n, v] : counters_) out.push_back(n);
  for (const auto& [n, v] : gauges_) out.push_back(n);
  for (const auto& [n, v] : histograms_) out.push_back(n);
  return out;
}

double MetricsRegistry::Snapshot::value(const std::string& name) const {
  auto it = values.find(name);
  return it == values.end() ? 0 : it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  for (const auto& [n, v] : counters_) {
    s.values[n] = static_cast<double>(v);
  }
  for (const auto& [n, v] : gauges_) s.values[n] = v;
  return s;
}

MetricsRegistry::Snapshot MetricsRegistry::delta_since(
    const Snapshot& prev) const {
  Snapshot now = snapshot();
  for (auto& [name, v] : now.values) v -= prev.value(name);
  return now;
}

std::string MetricsRegistry::render() const {
  std::ostringstream os;
  for (const auto& [n, v] : counters_) {
    os << strfmt("%-32s %llu\n", n.c_str(),
                 static_cast<unsigned long long>(v));
  }
  for (const auto& [n, v] : gauges_) {
    os << strfmt("%-32s %.3f\n", n.c_str(), v);
  }
  for (const auto& [n, h] : histograms_) {
    os << strfmt("%-32s %s\n", n.c_str(), h.summary().c_str());
  }
  return os.str();
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void ContextMetrics::refresh() {
  const Nanos now = ctx_.engine().now();
  if (now == last_refresh_) return;
  last_refresh_ = now;

  core::ChannelStats agg;
  std::size_t established = 0;
  std::size_t inflight = 0, queued = 0;
  for (core::Channel* ch : ctx_.channels()) {
    const auto& s = ch->stats();
    agg.msgs_tx += s.msgs_tx;
    agg.msgs_rx += s.msgs_rx;
    agg.bytes_tx += s.bytes_tx;
    agg.bytes_rx += s.bytes_rx;
    agg.large_msgs_tx += s.large_msgs_tx;
    agg.large_msgs_rx += s.large_msgs_rx;
    agg.acks_tx += s.acks_tx;
    agg.acks_rx += s.acks_rx;
    agg.nops_tx += s.nops_tx;
    agg.nops_rx += s.nops_rx;
    agg.keepalive_probes += s.keepalive_probes;
    agg.window_stalls += s.window_stalls;
    agg.flowctl_queued += s.flowctl_queued;
    agg.reads_issued += s.reads_issued;
    agg.rpc_calls += s.rpc_calls;
    agg.rpc_timeouts += s.rpc_timeouts;
    agg.bad_messages += s.bad_messages;
    agg.filtered_drops += s.filtered_drops;
    agg.egress_drops += s.egress_drops;
    agg.mock_tx += s.mock_tx;
    agg.dup_msgs_rx += s.dup_msgs_rx;
    agg.recoveries_started += s.recoveries_started;
    agg.recovery_attempts += s.recovery_attempts;
    agg.recoveries_completed += s.recoveries_completed;
    agg.recovery_retransmits += s.recovery_retransmits;
    agg.fallback_switches += s.fallback_switches;
    agg.fallback_restores += s.fallback_restores;
    agg.rpc_aborts += s.rpc_aborts;
    agg.tx_would_block += s.tx_would_block;
    agg.writable_signals += s.writable_signals;
    agg.naks_tx += s.naks_tx;
    agg.naks_rx += s.naks_rx;
    agg.pulls_deferred += s.pulls_deferred;
    agg.tx_mem_deferrals += s.tx_mem_deferrals;
    agg.ctrl_alloc_failures += s.ctrl_alloc_failures;
    agg.tx_shed += s.tx_shed;
    agg.breaker_fastfails += s.breaker_fastfails;
    agg.hdr_version_reject += s.hdr_version_reject;
    agg.hdr_tlv_skipped += s.hdr_tlv_skipped;
    agg.drains_tx += s.drains_tx;
    agg.drains_rx += s.drains_rx;
    agg.drain_recovery_parks += s.drain_recovery_parks;
    agg.doorbells += s.doorbells;
    agg.doorbell_wrs += s.doorbell_wrs;
    agg.inline_sends += s.inline_sends;
    agg.eager_copies_avoided += s.eager_copies_avoided;
    agg.crc_stamped_tx += s.crc_stamped_tx;
    agg.crc_failures_rx += s.crc_failures_rx;
    agg.integrity_naks_tx += s.integrity_naks_tx;
    agg.integrity_naks_rx += s.integrity_naks_rx;
    agg.integrity_retransmits += s.integrity_retransmits;
    agg.integrity_exhausted += s.integrity_exhausted;
    if (ch->usable()) ++established;
    inflight += ch->inflight_msgs();
    queued += ch->queued_msgs();
  }
  reg_.counter("chan.msgs_tx") = agg.msgs_tx;
  reg_.counter("chan.msgs_rx") = agg.msgs_rx;
  reg_.counter("chan.bytes_tx") = agg.bytes_tx;
  reg_.counter("chan.bytes_rx") = agg.bytes_rx;
  reg_.counter("chan.large_msgs_tx") = agg.large_msgs_tx;
  reg_.counter("chan.large_msgs_rx") = agg.large_msgs_rx;
  reg_.counter("chan.acks_tx") = agg.acks_tx;
  reg_.counter("chan.nops_tx") = agg.nops_tx;
  reg_.counter("chan.keepalive_probes") = agg.keepalive_probes;
  reg_.counter("chan.window_stalls") = agg.window_stalls;
  reg_.counter("chan.flowctl_queued") = agg.flowctl_queued;
  reg_.counter("chan.reads_issued") = agg.reads_issued;
  reg_.counter("chan.rpc_calls") = agg.rpc_calls;
  reg_.counter("chan.rpc_timeouts") = agg.rpc_timeouts;
  reg_.counter("chan.bad_messages") = agg.bad_messages;
  reg_.counter("chan.filtered_drops") = agg.filtered_drops;
  reg_.counter("chan.egress_drops") = agg.egress_drops;
  reg_.counter("chan.mock_tx") = agg.mock_tx;
  reg_.counter("chan.dup_msgs_rx") = agg.dup_msgs_rx;
  reg_.counter("chan.rpc_aborts") = agg.rpc_aborts;
  // Recovery plane (retry ladder + TCP fallback).
  reg_.counter("recovery.started") = agg.recoveries_started;
  reg_.counter("recovery.attempts") = agg.recovery_attempts;
  reg_.counter("recovery.completed") = agg.recoveries_completed;
  reg_.counter("recovery.retransmits") = agg.recovery_retransmits;
  reg_.counter("recovery.fallback_switches") = agg.fallback_switches;
  reg_.counter("recovery.fallback_restores") = agg.fallback_restores;
  // Overload plane (backpressure + shedding).
  reg_.counter("overload.tx_would_block") = agg.tx_would_block;
  reg_.counter("overload.writable_signals") = agg.writable_signals;
  reg_.counter("overload.naks_tx") = agg.naks_tx;
  reg_.counter("overload.naks_rx") = agg.naks_rx;
  reg_.counter("overload.pulls_deferred") = agg.pulls_deferred;
  reg_.counter("overload.tx_mem_deferrals") = agg.tx_mem_deferrals;
  reg_.counter("overload.ctrl_alloc_failures") = agg.ctrl_alloc_failures;
  reg_.counter("overload.tx_shed") = agg.tx_shed;
  reg_.counter("health.breaker_fastfails") = agg.breaker_fastfails;
  // Lifecycle plane (graceful drain + protocol negotiation).
  reg_.counter("chan.hdr_version_reject") = agg.hdr_version_reject;
  reg_.counter("chan.hdr_tlv_skipped") = agg.hdr_tlv_skipped;
  reg_.counter("chan.drains_tx") = agg.drains_tx;
  reg_.counter("chan.drains_rx") = agg.drains_rx;
  reg_.counter("recovery.drain_parks") = agg.drain_recovery_parks;
  // Batched hot path (doorbell coalescing + inline sends).
  reg_.counter("chan.doorbells") = agg.doorbells;
  reg_.counter("chan.inline_sends") = agg.inline_sends;
  reg_.counter("mem.eager_copies_avoided") = agg.eager_copies_avoided;
  reg_.gauge("chan.wrs_per_doorbell") =
      agg.doorbells > 0
          ? static_cast<double>(agg.doorbell_wrs) /
                static_cast<double>(agg.doorbells)
          : 0.0;
  // End-to-end integrity plane (CRC32C TLV + integrity-NAK replay).
  reg_.counter("integrity.crc_stamped_tx") = agg.crc_stamped_tx;
  reg_.counter("integrity.crc_failures_rx") = agg.crc_failures_rx;
  reg_.counter("integrity.naks_tx") = agg.integrity_naks_tx;
  reg_.counter("integrity.naks_rx") = agg.integrity_naks_rx;
  reg_.counter("integrity.retransmits") = agg.integrity_retransmits;
  reg_.counter("integrity.exhausted") = agg.integrity_exhausted;
  reg_.gauge("chan.established") = static_cast<double>(established);
  reg_.gauge("chan.inflight") = static_cast<double>(inflight);
  reg_.gauge("chan.queued") = static_cast<double>(queued);

  const auto& cs = ctx_.stats();
  reg_.counter("ctx.polls") = cs.polls;
  reg_.counter("ctx.empty_polls") = cs.empty_polls;
  reg_.counter("ctx.slow_polls") = cs.slow_polls;
  reg_.counter("ctx.watchdog_trips") = cs.watchdog_trips;
  reg_.counter("ctx.events_processed") = cs.events_processed;
  reg_.counter("ctx.parks") = cs.parks;
  reg_.counter("ctx.wakeups") = cs.wakeups;
  reg_.counter("ctx.channels_opened") = cs.channels_opened;
  reg_.counter("ctx.channels_closed") = cs.channels_closed;
  reg_.counter("ctx.channel_errors") = cs.channel_errors;
  reg_.counter("ctx.channels_recovered") = cs.channels_recovered;
  reg_.counter("overload.pressure_soft_events") = cs.pressure_soft_events;
  reg_.counter("overload.pressure_hard_events") = cs.pressure_hard_events;
  reg_.gauge("overload.queued_tx_bytes") =
      static_cast<double>(ctx_.queued_tx_bytes());
  reg_.gauge("overload.mem_pressure") =
      static_cast<double>(static_cast<int>(ctx_.mem_pressure()));
  reg_.gauge("ctx.worst_poll_gap_us") = to_micros(cs.worst_poll_gap);
  reg_.counter("ctx.drains_started") = cs.drains_started;
  reg_.counter("ctx.drains_completed") = cs.drains_completed;
  reg_.counter("ctx.lifecycle_rejects") = cs.lifecycle_rejects;
  reg_.gauge("ctx.lifecycle") =
      static_cast<double>(static_cast<int>(ctx_.lifecycle()));
  reg_.histogram("ctx.drain_latency") = cs.drain_latency;
  reg_.histogram("ctx.rpc_latency") = cs.rpc_latency;
  reg_.histogram("recovery.latency") = cs.recovery_latency;

  const auto& ctrl = ctx_.ctrl_cache().stats();
  const auto& data = ctx_.data_cache().stats();
  reg_.gauge("mem.occupied_mb") =
      static_cast<double>(ctrl.occupied_bytes + data.occupied_bytes) / 1e6;
  reg_.gauge("mem.in_use_mb") =
      static_cast<double>(ctrl.in_use_bytes + data.in_use_bytes) / 1e6;

  // Health plane: aggregate counters plus one gauge set per known peer
  // ("health.peer.<node>.*" — what xr_ping's health view reads).
  const auto& hs = ctx_.health().stats();
  reg_.counter("health.dead_declarations") = hs.dead_declarations;
  reg_.counter("health.breaker_opens") = hs.breaker_opens;
  reg_.counter("health.breaker_closes") = hs.breaker_closes;
  reg_.counter("health.connects_allowed") = hs.connects_allowed;
  reg_.counter("health.connects_denied") = hs.connects_denied;
  reg_.counter("health.flaps") = hs.flaps;
  reg_.counter("health.holddown_escalations") = hs.holddown_escalations;
  reg_.counter("health.suspect_transitions") = hs.suspect_transitions;
  reg_.counter("health.degraded_transitions") = hs.degraded_transitions;
  reg_.counter("health.draining_marks") = hs.draining_marks;
  reg_.counter("health.drain_suppressions") = hs.drain_suppressions;
  reg_.counter("health.drain_violations") = hs.drain_violations;
  reg_.counter("health.crc_storms") = hs.crc_storms;
  double peers_dead = 0, breakers_open = 0, peers_draining = 0;
  const auto views = ctx_.health().peers();
  for (const core::PeerHealthView& pv : views) {
    if (pv.state == core::PeerState::dead) ++peers_dead;
    if (pv.breaker_open) ++breakers_open;
    if (pv.draining) ++peers_draining;
    const std::string prefix = strfmt("health.peer.%u.", pv.peer);
    reg_.gauge(prefix + "state") =
        static_cast<double>(static_cast<int>(pv.state));
    reg_.gauge(prefix + "phi") = pv.phi;
    reg_.gauge(prefix + "bound_us") = to_micros(pv.silence_bound);
    reg_.gauge(prefix + "rtt_p50_us") = to_micros(pv.rtt_p50);
    reg_.gauge(prefix + "rtt_p99_us") = to_micros(pv.rtt_p99);
    reg_.gauge(prefix + "flaps") = static_cast<double>(pv.flaps);
    reg_.gauge(prefix + "holddown_level") =
        static_cast<double>(pv.holddown_level);
    reg_.gauge(prefix + "channels") = static_cast<double>(pv.channels);
    reg_.gauge(prefix + "draining") = pv.draining ? 1.0 : 0.0;
  }
  reg_.gauge("health.peers") = static_cast<double>(views.size());
  reg_.gauge("health.peers_dead") = peers_dead;
  reg_.gauge("health.breakers_open") = breakers_open;
  reg_.gauge("health.peers_draining") = peers_draining;
}

}  // namespace xrdma::analysis
