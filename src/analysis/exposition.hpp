// Prometheus-style text exposition of a MetricsRegistry (§VI-B: the
// monitoring plane a production deployment scrapes).
//
// Every registry name follows the dotted `<plane>.<name>` convention (see
// metrics.hpp); the exposition mangles dots to underscores under an
// `xrdma_` prefix, and folds the per-peer `<plane>.peer.<node>.<name>`
// gauges into one family per name with a `peer` label:
//
//     health.dead_declarations      -> xrdma_health_dead_declarations
//     health.peer.3.phi             -> xrdma_health_peer_phi{peer="3"}
//     ctx.rpc_latency (histogram)   -> xrdma_ctx_rpc_latency{quantile="0.5"}
//                                      ... _count
//
// The output is deterministic (families sorted by name, samples by label)
// so tests can lock the exact format.
#pragma once

#include <string>

#include "analysis/metrics.hpp"

namespace xrdma::analysis {

/// `xrdma_` + name with dots mangled to underscores; the per-peer infix
/// `peer.<node>.` is lifted out (the caller renders it as a label).
std::string prometheus_name(const std::string& name);

/// Full text exposition: `# TYPE` line per family, then its samples.
/// Counters render as integers, gauges with up to 9 significant digits,
/// histograms as summaries (quantile 0.5/0.9/0.99/1 plus _count).
std::string prometheus_render(const MetricsRegistry& registry);

}  // namespace xrdma::analysis
