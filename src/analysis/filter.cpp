#include "analysis/filter.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/channel.hpp"
#include "rnic/types.hpp"

namespace xrdma::analysis {

namespace {
constexpr const char* kFaultKindNames[kNumFaultKinds] = {
    "ingress_drop", "ingress_delay", "ingress_corrupt",
    "egress_drop",  "egress_delay",  "egress_corrupt",
    "qp_kill",      "cm_refuse",     "cm_timeout",
    "host_down",    "host_up",
};

bool is_ingress(FaultKind k) {
  return k == FaultKind::ingress_drop || k == FaultKind::ingress_delay ||
         k == FaultKind::ingress_corrupt;
}
bool is_egress(FaultKind k) {
  return k == FaultKind::egress_drop || k == FaultKind::egress_delay ||
         k == FaultKind::egress_corrupt;
}
}  // namespace

const char* to_string(FaultKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kNumFaultKinds ? kFaultKindNames[i] : "unknown";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
    if (name == kFaultKindNames[i]) return static_cast<FaultKind>(i);
  }
  return std::nullopt;
}

std::string format_rule(const FaultRule& rule) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %.17g %llu %ld %lld",
                to_string(rule.kind), rule.probability,
                static_cast<unsigned long long>(rule.channel_id),
                static_cast<long>(rule.budget),
                static_cast<long long>(rule.delay));
  return buf;
}

std::optional<FaultRule> parse_rule(std::string_view line) {
  char kind[32] = {};
  double prob = 0;
  unsigned long long channel = 0;
  long budget = 0;
  long long delay = 0;
  const std::string copy(line);
  if (std::sscanf(copy.c_str(), "%31s %lg %llu %ld %lld", kind, &prob,
                  &channel, &budget, &delay) != 5) {
    return std::nullopt;
  }
  const auto k = fault_kind_from_string(kind);
  if (!k) return std::nullopt;
  FaultRule rule;
  rule.kind = *k;
  rule.probability = prob;
  rule.channel_id = channel;
  rule.budget = static_cast<std::int32_t>(budget);
  rule.delay = delay;
  return rule;
}

Filter::Filter(core::Context& ctx, std::uint64_t seed) : ctx_(ctx) {
  rng_.reseed(seed);
  ctx_.set_filter([this](core::Channel& ch, const core::WireHeader&) {
    return consult(/*egress=*/false, ch);
  });
  ctx_.set_egress_filter([this](core::Channel& ch, const core::WireHeader&) {
    return consult(/*egress=*/true, ch);
  });
  // The CM service is cluster-wide; gate on src so only this context's
  // connect attempts (including recovery resumes) are affected.
  ctx_.cm().set_fault_hook(
      [this](net::NodeId src, net::NodeId, std::uint16_t) -> std::optional<Errc> {
        if (src != ctx_.node()) return std::nullopt;
        for (auto& slot : rules_) {
          if (!slot.active) continue;
          if (slot.rule.kind == FaultKind::cm_refuse &&
              rule_fires(slot, 0)) {
            note(FaultKind::cm_refuse);
            return Errc::connection_refused;
          }
          if (slot.rule.kind == FaultKind::cm_timeout &&
              rule_fires(slot, 0)) {
            note(FaultKind::cm_timeout);
            return Errc::timed_out;
          }
        }
        return std::nullopt;
      });
}

Filter::~Filter() {
  ctx_.set_filter(nullptr);
  ctx_.set_egress_filter(nullptr);
  ctx_.cm().set_fault_hook(nullptr);
  for (auto& t : kill_timers_) t->cancel();
}

std::size_t Filter::add_rule(FaultRule rule) {
  rules_.push_back(Slot{rule, true});
  return rules_.size() - 1;
}

void Filter::remove_rule(std::size_t id) {
  if (id < rules_.size()) rules_[id].active = false;
}

void Filter::clear() {
  for (auto& slot : rules_) slot.active = false;
}

bool Filter::rule_fires(Slot& slot, std::uint64_t channel_id) {
  const FaultRule& r = slot.rule;
  if (r.channel_id != 0 && channel_id != 0 && r.channel_id != channel_id) {
    return false;
  }
  if (r.probability < 1.0 && !rng_.chance(r.probability)) return false;
  if (slot.rule.budget == 0) return false;
  if (slot.rule.budget > 0 && --slot.rule.budget == 0) slot.active = false;
  return true;
}

core::Context::FilterDecision Filter::consult(bool egress, core::Channel& ch) {
  core::Context::FilterDecision d;
  const Nanos now = ctx_.engine().now();
  Nanos& floor = (egress ? egress_floor_ : ingress_floor_)[ch.id()];
  for (auto& slot : rules_) {
    if (!slot.active) continue;
    const FaultKind k = slot.rule.kind;
    if (egress ? !is_egress(k) : !is_ingress(k)) continue;
    if (!rule_fires(slot, ch.id())) continue;
    note(k);
    switch (k) {
      case FaultKind::ingress_drop:
      case FaultKind::egress_drop:
        d.action = core::Context::FilterAction::drop;
        return d;
      case FaultKind::ingress_delay:
      case FaultKind::egress_delay: {
        const Nanos drawn =
            slot.rule.delay > 0
                ? static_cast<Nanos>(rng_.uniform(1, slot.rule.delay))
                : micros(50);
        // Raise the channel's release floor: everything behind this message
        // queues after it instead of overtaking it.
        floor = std::max(floor, now) + drawn;
        d.action = core::Context::FilterAction::delay;
        d.delay = floor - now;
        floor += 1;  // strictly later release for the next message
        return d;
      }
      case FaultKind::ingress_corrupt:
      case FaultKind::egress_corrupt:
        d.action = core::Context::FilterAction::corrupt;
        d.corrupt_seed = rng_.next_u64();
        return d;
      default:
        break;
    }
  }
  if (floor > now) {
    // An earlier message on this channel is still held back; keep the
    // stream ordered by delaying this one just past it.
    d.action = core::Context::FilterAction::delay;
    d.delay = floor - now;
    floor += 1;
    return d;
  }
  return d;
}

void Filter::kill_qp(core::Channel& ch) {
  const rnic::QpNum qpn = ch.qp_num();
  if (qpn == rnic::kInvalidId) return;
  rnic::QpAttr attr;
  attr.state = rnic::QpState::error;
  ctx_.nic().modify_qp(qpn, attr);
  note(FaultKind::qp_kill);
}

void Filter::kill_qp_after(std::uint64_t channel_id, Nanos delay) {
  auto timer = std::make_unique<sim::DeadlineTimer>(
      ctx_.engine(), [this, channel_id] {
        core::Channel* ch = ctx_.channel_by_id(channel_id);
        if (ch && ch->usable()) kill_qp(*ch);
      });
  timer->arm_after(delay);
  kill_timers_.push_back(std::move(timer));
}

FaultSchedule::FaultSchedule(Filter& filter, Config cfg)
    : filter_(filter), cfg_(cfg) {
  rng_.reseed(cfg_.seed);
  kill_timer_ = std::make_unique<sim::DeadlineTimer>(
      filter_.context().engine(), [this] { fire_kill(); });
  flap_timer_ = std::make_unique<sim::DeadlineTimer>(
      filter_.context().engine(), [this] { flap_tick(); });
}

FaultSchedule::~FaultSchedule() { stop(); }

void FaultSchedule::start() {
  if (running_) return;
  running_ = true;
  if (cfg_.drop_prob > 0) {
    FaultRule r;
    r.kind = FaultKind::ingress_drop;
    r.probability = cfg_.drop_prob;
    rule_ids_.push_back(filter_.add_rule(r));
  }
  if (cfg_.delay_prob > 0) {
    FaultRule r;
    r.kind = FaultKind::ingress_delay;
    r.probability = cfg_.delay_prob;
    r.delay = cfg_.max_delay;
    rule_ids_.push_back(filter_.add_rule(r));
  }
  if (cfg_.brownout_prob > 0 && cfg_.brownout_delay > 0) {
    for (const FaultKind kind :
         {FaultKind::ingress_delay, FaultKind::egress_delay}) {
      FaultRule r;
      r.kind = kind;
      r.probability = cfg_.brownout_prob;
      r.delay = cfg_.brownout_delay;
      rule_ids_.push_back(filter_.add_rule(r));
    }
  }
  if (cfg_.flap_period > 0 && cfg_.flap_down > 0 &&
      cfg_.flap_down < cfg_.flap_period && flap_hook_) {
    flap_timer_->arm_after(cfg_.flap_period - cfg_.flap_down);
  }
  arm_next_kill();
}

void FaultSchedule::stop() {
  if (!running_) return;
  running_ = false;
  kill_timer_->cancel();
  flap_timer_->cancel();
  if (flap_is_down_) {
    flap_is_down_ = false;
    if (flap_hook_) flap_hook_(false);
  }
  for (std::size_t id : rule_ids_) filter_.remove_rule(id);
  rule_ids_.clear();
}

void FaultSchedule::arm_next_kill() {
  if (!running_ || kills_ >= cfg_.max_kills) return;
  // Uniform in [mean/2, 3*mean/2]: jittered but bounded, so a soak run's
  // duration stays predictable.
  const Nanos lo = cfg_.mean_kill_interval / 2;
  const Nanos hi = cfg_.mean_kill_interval + lo;
  kill_timer_->arm_after(static_cast<Nanos>(rng_.uniform(lo, hi)));
}

void FaultSchedule::fire_kill() {
  if (!running_) return;
  // Pick a random *established* channel; recovering ones already have a
  // dead QP and killing a closed one is meaningless.
  std::vector<core::Channel*> victims;
  for (core::Channel* ch : filter_.context().channels()) {
    if (ch->usable()) victims.push_back(ch);
  }
  if (!victims.empty()) {
    core::Channel* victim =
        victims[rng_.next_below(victims.size())];
    filter_.kill_qp(*victim);
    ++kills_;
  }
  arm_next_kill();
}

void FaultSchedule::flap_tick() {
  if (!running_ || !flap_hook_) return;
  if (!flap_is_down_) {
    flap_is_down_ = true;
    flap_hook_(true);
    flap_timer_->arm_after(cfg_.flap_down);
  } else {
    flap_is_down_ = false;
    ++flap_cycles_;
    flap_hook_(false);
    flap_timer_->arm_after(cfg_.flap_period - cfg_.flap_down);
  }
}

}  // namespace xrdma::analysis
