#include "analysis/mock.hpp"

#include <cstring>
#include <map>
#include <deque>

namespace xrdma::analysis {

namespace {
constexpr std::uint32_t kMockMagic = 0x584d4f43;  // "XMOC"

struct Bridge;
/// Active fallback bridges by channel, so restore_rdma can find and close
/// the stream (which flips the peer back too). Simulation is
/// single-threaded; a plain map suffices.
std::map<core::Channel*, std::shared_ptr<Bridge>>& bridge_registry() {
  static std::map<core::Channel*, std::shared_ptr<Bridge>> reg;
  return reg;
}

/// Per-connection stream state: reassembles length-prefixed frames and
/// bridges them into the channel.
struct Bridge : std::enable_shared_from_this<Bridge> {
  tcpsim::TcpConn* conn = nullptr;
  core::Channel* channel = nullptr;
  std::deque<std::uint8_t> rxbuf;
  bool handshaken = false;  // server side: waiting for the id frame

  void attach_channel(core::Channel& ch) {
    channel = &ch;
    auto self = shared_from_this();
    bridge_registry()[&ch] = self;
    ch.set_tx_override([self](Buffer wire) -> Errc {
      if (!self->conn || !self->conn->open()) return Errc::connection_reset;
      Buffer framed = Buffer::make(4 + wire.size());
      const std::uint32_t len = static_cast<std::uint32_t>(wire.size());
      std::memcpy(framed.data(), &len, 4);
      if (wire.data()) {
        std::memcpy(framed.data() + 4, wire.data(), wire.size());
      }
      return self->conn->send(std::move(framed));
    });
    // A recovering channel resumes here (window replay + RDMA probing); an
    // established one (manual switch) treats this as a no-op.
    ch.on_fallback_attached();
  }

  void detach() {
    if (channel) {
      channel->set_tx_override(nullptr);
      bridge_registry().erase(channel);
    }
    if (conn && conn->open()) conn->close();
    channel = nullptr;
  }

  void on_data(const Buffer& chunk) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      rxbuf.push_back(chunk.data() ? chunk.data()[i] : 0);
    }
    pump();
  }

  void pump() {
    while (rxbuf.size() >= 4) {
      std::uint8_t lenb[4];
      for (int i = 0; i < 4; ++i) lenb[i] = rxbuf[static_cast<std::size_t>(i)];
      std::uint32_t len = 0;
      std::memcpy(&len, lenb, 4);
      if (rxbuf.size() < 4 + len) return;
      std::vector<std::uint8_t> frame(len);
      rxbuf.erase(rxbuf.begin(), rxbuf.begin() + 4);
      for (std::uint32_t i = 0; i < len; ++i) {
        frame[i] = rxbuf.front();
        rxbuf.pop_front();
      }
      handle_frame(frame.data(), len);
    }
  }

  virtual void handle_frame(const std::uint8_t* data, std::uint32_t len) {
    if (channel) channel->on_alt_rx(data, len);
  }

  virtual ~Bridge() = default;
};

struct ServerBridge : Bridge {
  core::Context* ctx = nullptr;

  void handle_frame(const std::uint8_t* data, std::uint32_t len) override {
    if (!handshaken) {
      handshaken = true;
      if (len < 12) return;
      std::uint32_t magic = 0;
      std::uint64_t token = 0;
      std::memcpy(&magic, data, 4);
      std::memcpy(&token, data + 4, 8);
      if (magic != kMockMagic) return;
      core::Channel* ch = ctx->channel_by_token(token);
      // Accept recovering channels too: fallback escalation usually finds
      // this side mid-recovery (its QP died with the peer's).
      if (ch && (ch->state() == core::Channel::State::established ||
                 ch->state() == core::Channel::State::recovering)) {
        attach_channel(*ch);
      }
      return;
    }
    Bridge::handle_frame(data, len);
  }
};

void wire_conn(std::shared_ptr<Bridge> bridge, tcpsim::TcpConn& conn) {
  bridge->conn = &conn;
  conn.set_on_data([bridge](Buffer chunk) { bridge->on_data(chunk); });
  conn.set_on_error([bridge](Errc) {
    // Stream died or was closed. The channel decides what that means: a
    // deliberate restore reverts to RDMA, an unsolicited loss with no QP
    // re-enters recovery.
    if (bridge->channel) {
      bridge_registry().erase(bridge->channel);
      bridge->channel->on_fallback_lost();
    }
    bridge->channel = nullptr;
  });
}

}  // namespace

MockFallback::MockFallback(core::Context& ctx, tcpsim::TcpStack& tcp,
                           std::uint16_t port)
    : ctx_(ctx) {
  tcp.listen(port, [this](tcpsim::TcpConn& conn) {
    auto bridge = std::make_shared<ServerBridge>();
    bridge->ctx = &ctx_;
    wire_conn(bridge, conn);
  });
}

void MockFallback::switch_to_tcp(core::Channel& ch, tcpsim::TcpStack& tcp,
                                 std::uint16_t peer_port,
                                 std::function<void(Errc)> done) {
  tcp.connect(ch.peer_node(), peer_port,
              [&ch, done = std::move(done)](Result<tcpsim::TcpConn*> r) {
                if (!r.ok()) {
                  if (done) done(r.error());
                  return;
                }
                auto bridge = std::make_shared<Bridge>();
                wire_conn(bridge, *r.value());
                // Identify ourselves by the connection token — the channel
                // identity that survives QP replacement, so fallback works
                // even after the QPs are gone.
                Buffer hello = Buffer::make(4 + 12);
                const std::uint32_t frame_len = 12;
                std::memcpy(hello.data(), &frame_len, 4);
                std::memcpy(hello.data() + 4, &kMockMagic, 4);
                const std::uint64_t token = ch.conn_token();
                std::memcpy(hello.data() + 8, &token, 8);
                r.value()->send(std::move(hello));
                bridge->attach_channel(ch);
                if (done) done(Errc::ok);
              });
}

void MockFallback::restore_rdma(core::Channel& ch) {
  auto it = bridge_registry().find(&ch);
  if (it != bridge_registry().end()) {
    auto bridge = it->second;  // keep alive across detach's erase
    bridge->detach();          // closes the stream; the peer reverts on error
  } else {
    ch.set_tx_override(nullptr);
  }
}

void MockFallback::enable_auto(core::Context& ctx, tcpsim::TcpStack& tcp,
                               std::uint16_t peer_port) {
  ctx.set_fallback_provider(
      [&tcp, peer_port](core::Channel& ch, std::function<void(Errc)> done) {
        switch_to_tcp(ch, tcp, peer_port, std::move(done));
      });
  ctx.set_fallback_restore([](core::Channel& ch) { restore_rdma(ch); });
}

}  // namespace xrdma::analysis
