#include "analysis/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/metrics.hpp"

namespace xrdma::analysis {

double Series::max() const {
  double m = samples.empty() ? 0 : samples[0].value;
  for (const auto& s : samples) m = std::max(m, s.value);
  return m;
}

double Series::min() const {
  double m = samples.empty() ? 0 : samples[0].value;
  for (const auto& s : samples) m = std::min(m, s.value);
  return m;
}

double Series::mean() const {
  if (samples.empty()) return 0;
  double sum = 0;
  for (const auto& s : samples) sum += s.value;
  return sum / static_cast<double>(samples.size());
}

double Series::cov() const {
  // Degenerate series (empty, single-sample, zero-mean) have no defined
  // coefficient of variation; report "no jitter" instead of NaN/inf or a
  // sign flip on negative-mean series.
  if (samples.size() < 2) return 0;
  const double mu = mean();
  if (mu == 0) return 0;
  double var = 0;
  for (const auto& s : samples) var += (s.value - mu) * (s.value - mu);
  var /= static_cast<double>(samples.size());
  return std::sqrt(var) / std::abs(mu);
}

Monitor::Monitor(sim::Engine& engine, Nanos period)
    : engine_(engine), timer_(engine, period, [this] { sample_now(); }) {
  log_sink_id_ = Logger::global().add_sink([this](const LogRecord& rec) {
    if (rec.level >= LogLevel::warn) logs_.push_back(rec);
  });
}

Monitor::~Monitor() {
  timer_.stop();
  if (log_sink_id_ >= 0) Logger::global().remove_sink(log_sink_id_);
}

void Monitor::track(const std::string& name, std::function<double()> sampler) {
  samplers_.emplace_back(name, std::move(sampler));
  series_[name].name = name;
}

void Monitor::track_metric(ContextMetrics& metrics, const std::string& name) {
  track(name, [&metrics, name] { return metrics.registry().value(name); });
}

void Monitor::start() { timer_.start(); }
void Monitor::stop() { timer_.stop(); }

void Monitor::sample_now() {
  const Nanos now = engine_.now();
  for (auto& [name, sampler] : samplers_) {
    series_[name].samples.push_back({now, sampler()});
  }
}

const Series& Monitor::series(const std::string& name) const {
  static const Series empty;
  auto it = series_.find(name);
  return it == series_.end() ? empty : it->second;
}

std::vector<std::string> Monitor::names() const {
  std::vector<std::string> out;
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::size_t Monitor::count_logs(const std::string& substring) const {
  std::size_t n = 0;
  for (const auto& rec : logs_) {
    if (rec.message.find(substring) != std::string::npos) ++n;
  }
  return n;
}

std::string Monitor::table() const {
  std::ostringstream os;
  os << "time_ms";
  std::size_t rows = 0;
  for (const auto& [name, s] : series_) {
    os << "\t" << name;
    rows = std::max(rows, s.samples.size());
  }
  os << "\n";
  for (std::size_t i = 0; i < rows; ++i) {
    bool first = true;
    for (const auto& [name, s] : series_) {
      if (first) {
        const Nanos t = i < s.samples.size() ? s.samples[i].at : 0;
        os << to_millis(t);
        first = false;
      }
      if (i < s.samples.size()) {
        os << "\t" << s.samples[i].value;
      } else {
        os << "\t-";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace xrdma::analysis
