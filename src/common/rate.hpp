// Rate measurement helpers: EWMA and a windowed byte-rate meter used by the
// monitoring components (Fig. 3 / Fig. 11 style series) and DCQCN.
#pragma once

#include <deque>

#include "common/time.hpp"

namespace xrdma {

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void update(double sample) {
    value_ = initialized_ ? alpha_ * sample + (1 - alpha_) * value_ : sample;
    initialized_ = true;
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() { initialized_ = false; value_ = 0; }

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

/// Bytes-per-second over a sliding time window.
class RateMeter {
 public:
  explicit RateMeter(Nanos window = millis(10)) : window_(window) {}

  void add(Nanos now, std::uint64_t bytes) {
    samples_.push_back({now, bytes});
    total_ += bytes;
    evict(now);
  }

  /// Gbit/s over the window ending at `now`.
  double gbps(Nanos now) {
    evict(now);
    if (window_ <= 0) return 0;
    return static_cast<double>(total_) * 8.0 / static_cast<double>(window_);
  }

  double bytes_per_sec(Nanos now) {
    return gbps(now) * 1e9 / 8.0;
  }

 private:
  void evict(Nanos now) {
    while (!samples_.empty() && samples_.front().at < now - window_) {
      total_ -= samples_.front().bytes;
      samples_.pop_front();
    }
  }
  struct Sample {
    Nanos at;
    std::uint64_t bytes;
  };
  Nanos window_;
  std::deque<Sample> samples_;
  std::uint64_t total_ = 0;
};

}  // namespace xrdma
