// Deterministic RNG (xoshiro256**) so every simulation run is reproducible
// from its seed. std::mt19937 would also work but is slower and its
// distributions are not bit-stable across standard libraries.
#pragma once

#include <cstdint>

namespace xrdma {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to expand the seed into four lanes.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // statistical perfection is not required for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return next_double() < p; }

  /// Exponential with the given mean (for Poisson arrivals).
  double exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace xrdma
