#include "common/rng.hpp"

#include <cmath>

namespace xrdma {

double Rng::exponential(double mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid log(0).
  double u = next_double();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}

}  // namespace xrdma
