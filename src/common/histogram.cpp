#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace xrdma {

Histogram::Histogram() : buckets_(64 * kSubBuckets, 0) {}

std::size_t Histogram::bucket_for(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kMantissaBits;
  const auto sub = static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
  return static_cast<std::size_t>(msb - kMantissaBits + 1) * kSubBuckets + sub;
}

std::int64_t Histogram::bucket_value(std::size_t index) {
  const std::size_t exp = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  if (exp == 0) return static_cast<std::int64_t>(sub);
  // Midpoint of the bucket for low bias.
  const std::uint64_t base = (std::uint64_t{kSubBuckets} + sub) << (exp - 1);
  const std::uint64_t width = std::uint64_t{1} << (exp - 1);
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  const std::size_t b = bucket_for(value);
  if (b >= buckets_.size()) return;  // out of range: drop (can't happen <2^63)
  buckets_[b] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) return bucket_value(i);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::summary(bool as_micros) const {
  char buf[256];
  const double k = as_micros ? 1e-3 : 1.0;
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2f p50=%.2f p99=%.2f p999=%.2f max=%.2f%s",
                static_cast<unsigned long long>(count_), mean() * k,
                static_cast<double>(percentile(50)) * k,
                static_cast<double>(percentile(99)) * k,
                static_cast<double>(percentile(99.9)) * k,
                static_cast<double>(max_) * k, as_micros ? "us" : "");
  return buf;
}

}  // namespace xrdma
