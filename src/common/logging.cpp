#include "common/logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace xrdma {

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

int Logger::add_sink(Sink sink) {
  const int id = next_id_++;
  sinks_.push_back({id, std::move(sink)});
  return id;
}

void Logger::remove_sink(int id) {
  std::erase_if(sinks_, [id](const Entry& e) { return e.id == id; });
}

void Logger::log(Nanos sim_time, LogLevel level, std::string component,
                 std::string message) {
  if (level < min_level_) return;
  LogRecord rec{sim_time, level, std::move(component), std::move(message)};
  if (stderr_echo_) {
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::fprintf(stderr, "[%s] %s %s: %s\n",
                 format_duration(rec.sim_time).c_str(),
                 names[static_cast<int>(rec.level)], rec.component.c_str(),
                 rec.message.c_str());
  }
  for (auto& e : sinks_) e.sink(rec);
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace xrdma
