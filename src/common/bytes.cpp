#include "common/bytes.hpp"

namespace xrdma {

namespace {
std::uint8_t pattern_byte(std::uint64_t seed, std::size_t i) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (i + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return static_cast<std::uint8_t>(z >> 56);
}
}  // namespace

void fill_pattern(Buffer& b, std::uint64_t seed) {
  if (!b.data()) return;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = pattern_byte(seed, i);
}

bool check_pattern(const Buffer& b, std::uint64_t seed) {
  if (!b.data()) return b.empty();
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b.data()[i] != pattern_byte(seed, i)) return false;
  }
  return true;
}

}  // namespace xrdma
