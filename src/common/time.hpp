// Simulated-time primitives.
//
// All of X-RDMA's substrate runs on a deterministic discrete-event engine,
// so time is a plain signed 64-bit nanosecond count rather than a
// std::chrono clock. Helpers below build Nanos values from human units and
// format them for logs.
#pragma once

#include <cstdint>
#include <string>

namespace xrdma {

/// Simulated time point / duration, in nanoseconds since simulation start.
using Nanos = std::int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSec = 1'000'000'000;

constexpr Nanos nanos(std::int64_t n) { return n; }
constexpr Nanos micros(std::int64_t u) { return u * kNanosPerMicro; }
constexpr Nanos millis(std::int64_t m) { return m * kNanosPerMilli; }
constexpr Nanos seconds(std::int64_t s) { return s * kNanosPerSec; }

constexpr double to_micros(Nanos t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerMicro);
}
constexpr double to_millis(Nanos t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerMilli);
}
constexpr double to_seconds(Nanos t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSec);
}

/// "12.345ms" style rendering for logs and bench output.
std::string format_duration(Nanos t);

/// Time a given byte count occupies on a link of `gbps` gigabits/second.
constexpr Nanos transmission_time(std::uint64_t bytes, double gbps) {
  // bytes * 8 bits / (gbps * 1e9 bits/s) seconds -> ns
  return static_cast<Nanos>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace xrdma
