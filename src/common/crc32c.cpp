#include "common/crc32c.hpp"

#include <array>

namespace xrdma {

namespace {

// 256-entry table for the reflected Castagnoli polynomial, generated once
// at static-init time (constexpr, so actually at compile time).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c_extend(0, data, len);
}

}  // namespace xrdma
