// Log-bucketed latency histogram (HDR-style).
//
// Used by the Statistic component and the benches for percentile reporting.
// Buckets are <mantissa bits> subdivisions per power of two, giving a
// bounded relative error (~1.5% with 5 mantissa bits) over the whole range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xrdma {

class Histogram {
 public:
  Histogram();

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return max_; }
  double mean() const;
  /// p in [0,100]; returns a bucket-representative value.
  std::int64_t percentile(double p) const;

  void merge(const Histogram& other);
  void reset();

  /// "n=... mean=... p50=... p99=... max=..." with values printed as
  /// microseconds when `as_micros` (values are then assumed to be ns).
  std::string summary(bool as_micros = true) const;

 private:
  static constexpr int kMantissaBits = 5;
  static constexpr int kSubBuckets = 1 << kMantissaBits;

  static std::size_t bucket_for(std::int64_t value);
  static std::int64_t bucket_value(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace xrdma
