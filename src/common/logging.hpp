// Structured logging with pluggable sinks.
//
// The analysis framework's slow-segment logs (§VI-A method III) are emitted
// through this logger so the Monitor can collect them; tests install a
// capturing sink to assert on what was logged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace xrdma {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3 };

struct LogRecord {
  Nanos sim_time = 0;
  LogLevel level = LogLevel::info;
  std::string component;  // e.g. "xr.channel", "rnic", "trace"
  std::string message;
};

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  /// Process-wide logger. Simulations are single-threaded so no locking.
  static Logger& global();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Adds a sink; returns an id usable with remove_sink.
  int add_sink(Sink sink);
  void remove_sink(int id);
  /// Route records to stderr (off by default to keep bench output clean).
  void set_stderr_echo(bool on) { stderr_echo_ = on; }

  void log(Nanos sim_time, LogLevel level, std::string component,
           std::string message);

 private:
  struct Entry {
    int id;
    Sink sink;
  };
  LogLevel min_level_ = LogLevel::info;
  bool stderr_echo_ = false;
  int next_id_ = 1;
  std::vector<Entry> sinks_;
};

/// printf-style formatting helper.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace xrdma
