// Fixed-capacity ring buffer.
//
// The seq-ack window in the paper is "a ring buffer style whose ring length
// is the in-flight message depth" (§V-B); this is that ring. Capacity is
// rounded up to a power of two so index masking replaces modulo.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace xrdma {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }

  /// Append; returns false when full.
  bool push(T value) {
    if (full()) return false;
    slots_[tail_ & mask_] = std::move(value);
    ++tail_;
    return true;
  }

  /// Pop from the front; undefined when empty.
  T pop() {
    assert(!empty());
    T v = std::move(slots_[head_ & mask_]);
    ++head_;
    return v;
  }

  T& front() {
    assert(!empty());
    return slots_[head_ & mask_];
  }
  const T& front() const {
    assert(!empty());
    return slots_[head_ & mask_];
  }

  /// Element i positions from the front (0 == front()).
  T& at(std::size_t i) {
    assert(i < size());
    return slots_[(head_ + i) & mask_];
  }
  const T& at(std::size_t i) const {
    assert(i < size());
    return slots_[(head_ + i) & mask_];
  }

  /// Absolute sequence number of the front element. Sequence numbers grow
  /// monotonically with each push; the window layer aligns these with the
  /// wire SEQ numbers.
  std::size_t head_seq() const { return head_; }
  std::size_t tail_seq() const { return tail_; }

  void clear() {
    while (!empty()) pop();
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;  // absolute index of front
  std::size_t tail_ = 0;  // absolute index one past back
};

}  // namespace xrdma
