#include "common/time.hpp"

#include <cstdio>

namespace xrdma {

std::string format_duration(Nanos t) {
  char buf[48];
  if (t < kNanosPerMicro) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  } else if (t < kNanosPerMilli) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_micros(t));
  } else if (t < kNanosPerSec) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  }
  return buf;
}

}  // namespace xrdma
