// Payload buffers.
//
// Messages in the simulator carry either real bytes (tests validate
// content end-to-end) or just a length ("synthetic" payloads) so large
// bandwidth benches don't pay for memcpy of gigabytes. A Buffer is a
// refcounted byte block; BufferView is a cheap slice of one.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace xrdma {

class Buffer {
 public:
  Buffer() = default;

  /// Real buffer with storage.
  static Buffer make(std::size_t size) {
    Buffer b;
    b.data_ = std::make_shared<std::vector<std::uint8_t>>(size);
    b.size_ = size;
    return b;
  }

  static Buffer from_string(std::string_view s) {
    Buffer b = make(s.size());
    std::memcpy(b.data(), s.data(), s.size());
    return b;
  }

  /// Length-only buffer: occupies wire bytes but no memory.
  static Buffer synthetic(std::size_t size) {
    Buffer b;
    b.size_ = size;
    return b;
  }

  std::size_t size() const { return size_; }
  bool is_synthetic() const { return !data_ && size_ > 0; }
  bool empty() const { return size_ == 0; }

  std::uint8_t* data() { return data_ ? data_->data() : nullptr; }
  const std::uint8_t* data() const { return data_ ? data_->data() : nullptr; }

  std::string to_string() const {
    if (!data_) return std::string(size_, '\0');
    return std::string(reinterpret_cast<const char*>(data_->data()), size_);
  }

  /// Deep copy (synthetic stays synthetic).
  Buffer clone() const {
    if (!data_) {
      Buffer b;
      b.size_ = size_;
      return b;
    }
    Buffer b = make(size_);
    std::memcpy(b.data(), data(), size_);
    return b;
  }

  bool operator==(const Buffer& o) const {
    if (size_ != o.size_) return false;
    if (!data_ || !o.data_) return is_synthetic() == o.is_synthetic() || size_ == 0;
    return std::memcmp(data(), o.data(), size_) == 0;
  }

 private:
  std::shared_ptr<std::vector<std::uint8_t>> data_;
  std::size_t size_ = 0;
};

/// Fill with a deterministic pattern derived from `seed`, for end-to-end
/// content validation in tests.
void fill_pattern(Buffer& b, std::uint64_t seed);
bool check_pattern(const Buffer& b, std::uint64_t seed);

}  // namespace xrdma
