// Capped exponential backoff with jitter, shared by channel recovery and
// the eRPC client retry path. Doubling is capped at `max_shift`; +/-25%
// jitter desynchronizes retry storms after a correlated event (a fabric
// fault, an overloaded server shedding a burst).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace xrdma {

/// Delay before retry `attempt` (0-based count of prior tries): attempt 0
/// fires immediately, attempt n waits base << min(n-1, max_shift) +/- 25%.
inline Nanos backoff_with_jitter(Nanos base, std::uint32_t attempt, Rng& rng,
                                 std::uint32_t max_shift = 6) {
  if (attempt == 0) return 0;
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, max_shift);
  Nanos delay = base << shift;
  const Nanos quarter = delay / 4;
  if (quarter > 0) {
    delay += static_cast<Nanos>(
                 rng.next_below(static_cast<std::uint64_t>(2 * quarter))) -
             quarter;
  }
  return delay;
}

}  // namespace xrdma
