// Error codes shared across the stack, plus a tiny Result<T>.
//
// The verbs layer mirrors ibverbs' work-completion status values where a
// direct analogue exists (RNR, remote access, retry exceeded, ...), and the
// middleware layers reuse the same enum so errors propagate without
// translation tables.
#pragma once

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace xrdma {

enum class Errc {
  ok = 0,
  // Generic.
  invalid_argument,
  not_found,
  already_exists,
  resource_exhausted,
  unavailable,
  timed_out,
  cancelled,
  internal,
  // Verbs / RNIC analogues of ibv_wc_status.
  local_length_error,      // IBV_WC_LOC_LEN_ERR
  local_protection_error,  // IBV_WC_LOC_PROT_ERR
  wr_flush_error,          // IBV_WC_WR_FLUSH_ERR
  remote_access_error,     // IBV_WC_REM_ACCESS_ERR
  remote_invalid_request,  // IBV_WC_REM_INV_REQ_ERR
  rnr_retry_exceeded,      // IBV_WC_RNR_RETRY_EXC_ERR
  transport_retry_exceeded,// IBV_WC_RETRY_EXC_ERR
  remote_operation_error,  // IBV_WC_REM_OP_ERR
  // Connection management.
  connection_refused,
  connection_reset,
  peer_dead,               // raised by keepalive
  // Middleware.
  window_full,             // seq-ack window has no free slot
  channel_closed,
  payload_too_large,
  bad_message,             // framing / header validation failed
  would_block,             // bounded tx queue is full; wait for on_writable
  overloaded,              // server shed the request; back off and retry
  integrity_error,         // e2e CRC retries exhausted; data-plane corruption
};

std::string_view errc_name(Errc e);

/// Minimal expected-like result carrier. Success stores T, failure an Errc.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Errc e) : v_(e) { assert(e != Errc::ok); }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  Errc error() const { return ok() ? Errc::ok : std::get<Errc>(v_); }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Errc> v_;
};

}  // namespace xrdma
