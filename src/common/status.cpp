#include "common/status.hpp"

namespace xrdma {

std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::unavailable: return "unavailable";
    case Errc::timed_out: return "timed_out";
    case Errc::cancelled: return "cancelled";
    case Errc::internal: return "internal";
    case Errc::local_length_error: return "local_length_error";
    case Errc::local_protection_error: return "local_protection_error";
    case Errc::wr_flush_error: return "wr_flush_error";
    case Errc::remote_access_error: return "remote_access_error";
    case Errc::remote_invalid_request: return "remote_invalid_request";
    case Errc::rnr_retry_exceeded: return "rnr_retry_exceeded";
    case Errc::transport_retry_exceeded: return "transport_retry_exceeded";
    case Errc::remote_operation_error: return "remote_operation_error";
    case Errc::connection_refused: return "connection_refused";
    case Errc::connection_reset: return "connection_reset";
    case Errc::peer_dead: return "peer_dead";
    case Errc::window_full: return "window_full";
    case Errc::channel_closed: return "channel_closed";
    case Errc::payload_too_large: return "payload_too_large";
    case Errc::bad_message: return "bad_message";
    case Errc::would_block: return "would_block";
    case Errc::overloaded: return "overloaded";
    case Errc::integrity_error: return "integrity_error";
  }
  return "unknown";
}

}  // namespace xrdma
