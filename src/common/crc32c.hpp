// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum the
// integrity plane stamps into the wire-v2 CRC TLV (see msg.hpp).
//
// Table-driven, byte-at-a-time. Real deployments would use SSE4.2 `crc32`
// or ARMv8 CRC instructions (~16 GB/s); the simulation models that cost in
// the send path (Config::send_path_overhead plus a per-covered-byte term)
// and only needs the software reference here, so portability beats speed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xrdma {

/// One-shot CRC32C over `len` bytes. Standard init/xorout (~0).
std::uint32_t crc32c(const void* data, std::size_t len);

/// Incremental form: feed `crc` from a previous call (or 0 to start) to
/// extend the checksum over a discontiguous region, e.g. header bytes with
/// the CRC field zeroed followed by the payload.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t len);

}  // namespace xrdma
