// Simplified kernel TCP model over the same fabric.
//
// Exists for three of the paper's comparisons: (1) connection establishment
// ~100 us vs ~4 ms for rdma_cm (§III issue 3), (2) the keepAlive semantics
// X-RDMA ports to RDMA (§V-A), and (3) the Mock component's live fallback
// from RDMA to TCP (§VI-C). It is a reliable in-order byte stream with a
// fixed window, go-back-N retransmission, per-operation kernel overheads,
// and optional keepalive probes — deliberately not a full TCP (no cwnd
// dynamics); it rides the lossy traffic class.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/timer.hpp"

namespace xrdma::tcpsim {

struct TcpConfig {
  std::uint32_t mss = 1460;
  std::uint32_t header_bytes = 66;
  Nanos kernel_tx_overhead = micros(2);  // syscall + copy per send() call
  Nanos kernel_rx_overhead = micros(2);  // softirq + copy per delivery
  Nanos handshake_delay = micros(100);   // 3-way handshake, kernel included
  std::uint64_t window_bytes = 256 * 1024;
  Nanos rto = millis(2);
};

struct TcpSegment : net::PayloadBase {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  Buffer data;
  bool ack_only = false;
  bool keepalive = false;
  bool fin = false;
};

class TcpStack;

class TcpConn {
 public:
  using DataHandler = std::function<void(Buffer)>;
  using ErrorHandler = std::function<void(Errc)>;

  net::NodeId peer_node() const { return peer_node_; }
  bool open() const { return open_; }

  /// Queue bytes onto the stream. Delivery order matches call order.
  Errc send(Buffer data);

  void set_on_data(DataHandler h) { on_data_ = std::move(h); }
  void set_on_error(ErrorHandler h) { on_error_ = std::move(h); }

  /// TCP keepalive (SO_KEEPALIVE): probe after `interval` idle; declare the
  /// peer dead if nothing is heard for `timeout` after the probe.
  void set_keepalive(Nanos interval, Nanos timeout);

  void close();

  std::uint64_t bytes_sent() const { return snd_nxt_; }
  std::uint64_t bytes_delivered() const { return rcv_nxt_; }

 private:
  friend class TcpStack;
  TcpConn(TcpStack& stack, std::uint16_t local_port, net::NodeId peer_node,
          std::uint16_t peer_port);

  void pump();
  void on_segment(const TcpSegment& seg);
  void send_ack();
  void retransmit();
  void fail(Errc err);
  void keepalive_fired();

  TcpStack& stack_;
  std::uint16_t local_port_;
  net::NodeId peer_node_;
  std::uint16_t peer_port_;
  bool open_ = true;

  // Send side.
  std::deque<std::uint8_t> send_buf_;  // unsent bytes
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::deque<std::pair<std::uint64_t, Buffer>> inflight_;  // (seq, data)
  Nanos tx_ready_at_ = 0;  // kernel overhead pacing
  std::unique_ptr<sim::DeadlineTimer> rto_timer_;

  // Receive side.
  std::uint64_t rcv_nxt_ = 0;

  // Keepalive.
  Nanos ka_interval_ = 0;
  Nanos ka_timeout_ = 0;
  Nanos last_rx_ = 0;
  bool ka_probe_outstanding_ = false;
  std::unique_ptr<sim::DeadlineTimer> ka_timer_;

  DataHandler on_data_;
  ErrorHandler on_error_;
};

/// Per-host TCP endpoint. Data segments traverse the fabric (lossy class);
/// the handshake is modelled as a fixed-cost out-of-band exchange through
/// TcpNetwork, mirroring how verbs::cm models rdma_cm.
class TcpNetwork;

class TcpStack {
 public:
  TcpStack(sim::Engine& engine, net::Endpoint& endpoint, TcpNetwork& network,
           TcpConfig config = {});
  ~TcpStack();
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  net::NodeId node() const { return endpoint_.node(); }
  sim::Engine& engine() { return engine_; }
  const TcpConfig& config() const { return config_; }

  using AcceptHandler = std::function<void(TcpConn&)>;
  void listen(std::uint16_t port, AcceptHandler on_accept);
  void connect(net::NodeId dst, std::uint16_t port,
               std::function<void(Result<TcpConn*>)> cb);

  /// Host packet demux entry points (wired by testbed::Host).
  void on_packet(net::Packet&& pkt);
  void on_tx_unpaused() {}

  void set_alive(bool alive) { alive_ = alive; }
  bool alive() const { return alive_; }

 private:
  friend class TcpConn;
  friend class TcpNetwork;

  void send_segment(TcpConn& conn, std::shared_ptr<TcpSegment> seg);
  TcpConn* make_conn(std::uint16_t local_port, net::NodeId peer,
                     std::uint16_t peer_port);
  void drop_conn(TcpConn* conn);

  sim::Engine& engine_;
  net::Endpoint& endpoint_;
  TcpNetwork& network_;
  TcpConfig config_;
  bool alive_ = true;
  std::uint16_t next_ephemeral_ = 50000;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  // (local_port, peer_node, peer_port) -> conn
  std::map<std::tuple<std::uint16_t, net::NodeId, std::uint16_t>,
           std::unique_ptr<TcpConn>>
      conns_;
};

class TcpNetwork {
 public:
  explicit TcpNetwork(sim::Engine& engine) : engine_(engine) {}
  void add(TcpStack* stack) { stacks_[stack->node()] = stack; }
  TcpStack* find(net::NodeId node) const {
    auto it = stacks_.find(node);
    return it == stacks_.end() ? nullptr : it->second;
  }
  sim::Engine& engine() { return engine_; }

 private:
  sim::Engine& engine_;
  std::map<net::NodeId, TcpStack*> stacks_;
};

}  // namespace xrdma::tcpsim
