#include "tcpsim/tcp.hpp"

#include <algorithm>
#include <cstring>

namespace xrdma::tcpsim {

// ---------------------------------------------------------------------------
// TcpStack

TcpStack::TcpStack(sim::Engine& engine, net::Endpoint& endpoint,
                   TcpNetwork& network, TcpConfig config)
    : engine_(engine), endpoint_(endpoint), network_(network),
      config_(config) {
  network_.add(this);
}

TcpStack::~TcpStack() = default;

void TcpStack::listen(std::uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpConn* TcpStack::make_conn(std::uint16_t local_port, net::NodeId peer,
                             std::uint16_t peer_port) {
  auto conn = std::unique_ptr<TcpConn>(
      new TcpConn(*this, local_port, peer, peer_port));
  TcpConn* raw = conn.get();
  conns_[{local_port, peer, peer_port}] = std::move(conn);
  return raw;
}

void TcpStack::drop_conn(TcpConn* conn) {
  conns_.erase({conn->local_port_, conn->peer_node_, conn->peer_port_});
}

void TcpStack::connect(net::NodeId dst, std::uint16_t port,
                       std::function<void(Result<TcpConn*>)> cb) {
  const std::uint16_t local_port = next_ephemeral_++;
  engine_.schedule_after(config_.handshake_delay, [this, dst, port, local_port,
                                                   cb = std::move(cb)] {
    TcpStack* peer = network_.find(dst);
    if (!peer || !peer->alive_) {
      cb(Errc::connection_refused);
      return;
    }
    auto it = peer->listeners_.find(port);
    if (it == peer->listeners_.end()) {
      cb(Errc::connection_refused);
      return;
    }
    TcpConn* server_side = peer->make_conn(port, node(), local_port);
    TcpConn* client_side = make_conn(local_port, dst, port);
    it->second(*server_side);
    cb(client_side);
  });
}

void TcpStack::send_segment(TcpConn& conn, std::shared_ptr<TcpSegment> seg) {
  if (!alive_) return;
  net::Packet pkt;
  pkt.src = node();
  pkt.dst = conn.peer_node_;
  pkt.wire_bytes =
      config_.header_bytes + static_cast<std::uint32_t>(seg->data.size());
  pkt.tclass = net::TrafficClass::lossy;
  pkt.ecn_capable = false;
  pkt.flow = (static_cast<std::uint64_t>(conn.local_port_) << 16) ^
             conn.peer_port_ ^ (static_cast<std::uint64_t>(node()) << 32);
  pkt.payload = std::move(seg);
  endpoint_.send(std::move(pkt));
}

void TcpStack::on_packet(net::Packet&& pkt) {
  if (!alive_) return;
  auto seg = std::static_pointer_cast<const TcpSegment>(pkt.payload);
  const net::NodeId src = pkt.src;
  engine_.schedule_after(config_.kernel_rx_overhead, [this, seg, src] {
    if (!alive_) return;
    auto it = conns_.find({seg->dst_port, src, seg->src_port});
    if (it == conns_.end()) return;  // no such connection: RST-equivalent drop
    it->second->on_segment(*seg);
  });
}

// ---------------------------------------------------------------------------
// TcpConn

TcpConn::TcpConn(TcpStack& stack, std::uint16_t local_port,
                 net::NodeId peer_node, std::uint16_t peer_port)
    : stack_(stack), local_port_(local_port), peer_node_(peer_node),
      peer_port_(peer_port) {
  rto_timer_ = std::make_unique<sim::DeadlineTimer>(
      stack_.engine(), [this] { retransmit(); });
  last_rx_ = stack_.engine().now();
}

Errc TcpConn::send(Buffer data) {
  if (!open_) return Errc::channel_closed;
  if (data.is_synthetic()) {
    // The stream model needs real bytes; synthesize zeros.
    data = Buffer::make(data.size());
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    send_buf_.push_back(data.data() ? data.data()[i] : 0);
  }
  tx_ready_at_ = std::max(tx_ready_at_, stack_.engine().now()) +
                 stack_.config().kernel_tx_overhead;
  pump();
  return Errc::ok;
}

void TcpConn::pump() {
  if (!open_) return;
  const Nanos now = stack_.engine().now();
  if (tx_ready_at_ > now) {
    stack_.engine().schedule_after(tx_ready_at_ - now, [this] { pump(); });
    return;
  }
  const auto& cfg = stack_.config();
  while (!send_buf_.empty() &&
         snd_nxt_ - snd_una_ + cfg.mss <= cfg.window_bytes) {
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::size_t>(cfg.mss, send_buf_.size()));
    Buffer chunk = Buffer::make(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      chunk.data()[i] = send_buf_.front();
      send_buf_.pop_front();
    }
    auto seg = std::make_shared<TcpSegment>();
    seg->src_port = local_port_;
    seg->dst_port = peer_port_;
    seg->seq = snd_nxt_;
    seg->ack = rcv_nxt_;
    seg->data = chunk;
    inflight_.emplace_back(snd_nxt_, chunk);
    snd_nxt_ += n;
    stack_.send_segment(*this, std::move(seg));
  }
  if (!inflight_.empty()) rto_timer_->arm_after(cfg.rto);
}

void TcpConn::send_ack() {
  auto seg = std::make_shared<TcpSegment>();
  seg->src_port = local_port_;
  seg->dst_port = peer_port_;
  seg->seq = snd_nxt_;
  seg->ack = rcv_nxt_;
  seg->ack_only = true;
  stack_.send_segment(*this, std::move(seg));
}

void TcpConn::on_segment(const TcpSegment& seg) {
  if (!open_) return;
  last_rx_ = stack_.engine().now();
  ka_probe_outstanding_ = false;
  if (ka_interval_ > 0) ka_timer_->arm_after(ka_interval_);

  // Ack processing.
  if (seg.ack > snd_una_) {
    snd_una_ = std::min(seg.ack, snd_nxt_);
    while (!inflight_.empty() &&
           inflight_.front().first + inflight_.front().second.size() <=
               snd_una_) {
      inflight_.pop_front();
    }
    if (inflight_.empty()) {
      rto_timer_->cancel();
    } else {
      rto_timer_->arm_after(stack_.config().rto);
    }
    pump();
  }

  if (seg.fin) {
    fail(Errc::connection_reset);
    return;
  }
  if (seg.keepalive) {
    send_ack();
    return;
  }
  if (seg.ack_only) return;

  // Data processing: accept only the next in-order segment (go-back-N).
  if (seg.seq != rcv_nxt_) {
    send_ack();  // duplicate ack signals the gap
    return;
  }
  rcv_nxt_ += seg.data.size();
  send_ack();
  if (on_data_) on_data_(seg.data);
}

void TcpConn::retransmit() {
  if (!open_ || inflight_.empty()) return;
  for (auto& [seq, data] : inflight_) {
    auto seg = std::make_shared<TcpSegment>();
    seg->src_port = local_port_;
    seg->dst_port = peer_port_;
    seg->seq = seq;
    seg->ack = rcv_nxt_;
    seg->data = data;
    stack_.send_segment(*this, std::move(seg));
  }
  rto_timer_->arm_after(stack_.config().rto);
}

void TcpConn::set_keepalive(Nanos interval, Nanos timeout) {
  ka_interval_ = interval;
  ka_timeout_ = timeout;
  if (!ka_timer_) {
    ka_timer_ = std::make_unique<sim::DeadlineTimer>(
        stack_.engine(), [this] { keepalive_fired(); });
  }
  if (interval > 0) ka_timer_->arm_after(interval);
}

void TcpConn::keepalive_fired() {
  if (!open_) return;
  const Nanos now = stack_.engine().now();
  if (ka_probe_outstanding_ && now - last_rx_ >= ka_timeout_) {
    fail(Errc::peer_dead);
    return;
  }
  auto seg = std::make_shared<TcpSegment>();
  seg->src_port = local_port_;
  seg->dst_port = peer_port_;
  seg->seq = snd_nxt_;
  seg->ack = rcv_nxt_;
  seg->keepalive = true;
  stack_.send_segment(*this, std::move(seg));
  ka_probe_outstanding_ = true;
  ka_timer_->arm_after(std::min(ka_interval_, ka_timeout_));
}

void TcpConn::fail(Errc err) {
  if (!open_) return;
  open_ = false;
  rto_timer_->cancel();
  if (ka_timer_) ka_timer_->cancel();
  if (on_error_) on_error_(err);
}

void TcpConn::close() {
  if (!open_) return;
  auto seg = std::make_shared<TcpSegment>();
  seg->src_port = local_port_;
  seg->dst_port = peer_port_;
  seg->seq = snd_nxt_;
  seg->ack = rcv_nxt_;
  seg->fin = true;
  stack_.send_segment(*this, std::move(seg));
  open_ = false;
  rto_timer_->cancel();
  if (ka_timer_) ka_timer_->cancel();
}

}  // namespace xrdma::tcpsim
