// X-DB-style transaction workload (§II-C): MySQL front-ends in containers
// issuing transactions whose storage traffic rides X-RDMA.
//
// A transaction here is a read-modify-write against a DB server: one read
// RPC fetching a page-sized response, followed by a log write RPC. The
// driver runs closed-loop with a configurable multiprogramming level and
// reports per-transaction latency — the anti-jitter series of Fig. 12b.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.hpp"
#include "common/rate.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "testbed/cluster.hpp"

namespace xrdma::apps {

struct XdbConfig {
  std::uint16_t port = 8200;
  std::uint32_t page_size = 16 * 1024;   // read response (InnoDB page)
  std::uint32_t log_write_size = 4096;   // redo log append
  int concurrency = 8;                   // in-flight transactions
  core::Config xrdma;
};

/// DB server: answers page reads (large responses, Read-replace-Write
/// path) and log writes (small).
class XdbServer {
 public:
  XdbServer(testbed::Cluster& cluster, net::NodeId node, XdbConfig cfg);
  core::Context& ctx() { return ctx_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  XdbConfig cfg_;
  core::Context ctx_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Front-end driver: runs transactions against one server.
class XdbClient {
 public:
  XdbClient(testbed::Cluster& cluster, net::NodeId node, net::NodeId server,
            XdbConfig cfg);

  void start(std::function<void()> ready);
  void stop() { running_ = false; }

  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  const Histogram& txn_latency() const { return latency_; }
  double tps_now();
  core::Context& ctx() { return ctx_; }

 private:
  void run_txn();

  XdbConfig cfg_;
  core::Context ctx_;
  net::NodeId server_;
  core::Channel* channel_ = nullptr;
  bool running_ = false;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  Histogram latency_;
  RateMeter tps_meter_{millis(50)};
};

}  // namespace xrdma::apps
