// ERPC: the protobuf-style RPC framework the paper cites as the typical
// X-RDMA consumer (§VII-B — "a protobuf RPC framework with RDMA support at
// Alibaba", where switching to X-RDMA saved 70% of team man-months).
//
// A small typed-service layer over core::Channel:
//   - WireWriter/WireReader: a varint + length-delimited field codec
//     (protobuf wire-format-shaped, enough for realistic message schemas);
//   - Service/method registration by id, request dispatch, error replies;
//   - ClientStub with per-method calls, deadlines, and typed decoding.
// The X-RDMA channel underneath supplies everything the paper's framework
// got for free: mixed messaging for large responses, seq-ack delivery
// guarantees, keepalive, and the analysis hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/context.hpp"

namespace xrdma::apps::erpc {

/// Varint + length-delimited field encoder (protobuf-shaped).
class WireWriter {
 public:
  void put_varint(std::uint64_t v);
  void put_u32(std::uint32_t v) { put_varint(v); }
  void put_u64(std::uint64_t v) { put_varint(v); }
  void put_bytes(const std::uint8_t* data, std::size_t len);
  void put_string(const std::string& s) {
    put_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  Buffer finish() const;
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class WireReader {
 public:
  /// Keeps a (refcounted) copy of the buffer, so reading from a temporary
  /// is safe.
  explicit WireReader(Buffer buffer)
      : buffer_(std::move(buffer)),
        data_(buffer_.data()),
        size_(buffer_.size()) {}

  std::optional<std::uint64_t> varint();
  std::optional<std::string> string();
  bool exhausted() const { return pos_ >= size_; }
  bool ok() const { return ok_; }

 private:
  Buffer buffer_;
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

using MethodId = std::uint32_t;

/// Server-side service container bound to one context/port.
class Server {
 public:
  /// respond(payload) sends the success reply; respond_error(errc) the
  /// failure. Exactly one must be called (possibly asynchronously).
  struct Call {
    Buffer request;
    std::function<void(Buffer)> respond;
    std::function<void(Errc)> respond_error;
    net::NodeId peer = net::kInvalidNode;
  };
  using Handler = std::function<void(Call)>;

  Server(core::Context& ctx, std::uint16_t port);

  void register_method(MethodId id, Handler handler);
  std::uint64_t calls_served() const { return served_; }
  std::uint64_t unknown_methods() const { return unknown_; }

 private:
  void dispatch(core::Channel& ch, core::Msg&& msg);

  core::Context& ctx_;
  std::map<MethodId, Handler> methods_;
  std::uint64_t served_ = 0;
  std::uint64_t unknown_ = 0;
};

/// Client-side stub: one logical connection, typed calls by method id.
class ClientStub {
 public:
  using Callback = std::function<void(Result<Buffer>)>;

  ClientStub(core::Context& ctx, net::NodeId server, std::uint16_t port);

  /// Establish the underlying channel; calls before `ready` fires fail.
  void connect(std::function<void(Errc)> ready);
  bool connected() const { return channel_ && channel_->usable(); }

  Errc call(MethodId method, Buffer request, Callback cb,
            Nanos deadline = millis(100));

  core::Channel* channel() { return channel_; }

 private:
  core::Context& ctx_;
  net::NodeId server_;
  std::uint16_t port_;
  core::Channel* channel_ = nullptr;
};

}  // namespace xrdma::apps::erpc
