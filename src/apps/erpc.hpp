// ERPC: the protobuf-style RPC framework the paper cites as the typical
// X-RDMA consumer (§VII-B — "a protobuf RPC framework with RDMA support at
// Alibaba", where switching to X-RDMA saved 70% of team man-months).
//
// A small typed-service layer over core::Channel:
//   - WireWriter/WireReader: a varint + length-delimited field codec
//     (protobuf wire-format-shaped, enough for realistic message schemas);
//   - Service/method registration by id, request dispatch, error replies;
//   - ClientStub with per-method calls, deadlines, and typed decoding.
// The X-RDMA channel underneath supplies everything the paper's framework
// got for free: mixed messaging for large responses, seq-ack delivery
// guarantees, keepalive, and the analysis hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"

namespace xrdma::apps::erpc {

/// Varint + length-delimited field encoder (protobuf-shaped).
class WireWriter {
 public:
  void put_varint(std::uint64_t v);
  void put_u32(std::uint32_t v) { put_varint(v); }
  void put_u64(std::uint64_t v) { put_varint(v); }
  void put_bytes(const std::uint8_t* data, std::size_t len);
  void put_string(const std::string& s) {
    put_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  Buffer finish() const;
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class WireReader {
 public:
  /// Keeps a (refcounted) copy of the buffer, so reading from a temporary
  /// is safe.
  explicit WireReader(Buffer buffer)
      : buffer_(std::move(buffer)),
        data_(buffer_.data()),
        size_(buffer_.size()) {}

  std::optional<std::uint64_t> varint();
  std::optional<std::string> string();
  bool exhausted() const { return pos_ >= size_; }
  bool ok() const { return ok_; }

 private:
  Buffer buffer_;
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

using MethodId = std::uint32_t;

/// Server-side service container bound to one context/port.
class Server {
 public:
  /// respond(payload) sends the success reply; respond_error(errc) the
  /// failure. Exactly one must be called (possibly asynchronously).
  struct Call {
    Buffer request;
    std::function<void(Buffer)> respond;
    std::function<void(Errc)> respond_error;
    net::NodeId peer = net::kInvalidNode;
  };
  using Handler = std::function<void(Call)>;

  Server(core::Context& ctx, std::uint16_t port);

  void register_method(MethodId id, Handler handler);
  std::uint64_t calls_served() const { return served_; }
  std::uint64_t unknown_methods() const { return unknown_; }
  /// Requests dropped by deadline-aware shedding: the client's remaining
  /// budget (propagated in the wire header) could not cover the estimated
  /// service time, so serving would only have produced a late, wasted
  /// reply. Shed requests answer Errc::overloaded immediately.
  std::uint64_t calls_shed() const { return shed_; }
  const Histogram& service_time() const { return service_time_; }

 private:
  void dispatch(core::Channel& ch, core::Msg&& msg);
  /// Service-time estimate used for shedding: p50 of observed handler
  /// times once enough samples exist, 0 (never shed) before that.
  Nanos estimated_service_time() const;

  core::Context& ctx_;
  std::map<MethodId, Handler> methods_;
  Histogram service_time_;  // dispatch -> respond, ns
  std::uint64_t served_ = 0;
  std::uint64_t unknown_ = 0;
  std::uint64_t shed_ = 0;
};

/// Client-side stub: one logical connection, typed calls by method id.
class ClientStub {
 public:
  using Callback = std::function<void(Result<Buffer>)>;

  ClientStub(core::Context& ctx, net::NodeId server, std::uint16_t port);

  /// Establish the underlying channel; calls before `ready` fires fail.
  void connect(std::function<void(Errc)> ready);
  bool connected() const { return channel_ && channel_->usable(); }

  /// Issues the call, retrying transparently while the deadline budget
  /// lasts when the local channel pushes back (Errc::would_block from the
  /// bounded tx queue) or the server sheds (Errc::overloaded). Retries use
  /// capped exponential backoff with jitter; the callback sees the final
  /// outcome only.
  Errc call(MethodId method, Buffer request, Callback cb,
            Nanos deadline = millis(100));

  core::Channel* channel() { return channel_; }
  std::uint64_t retries() const { return retries_; }
  void set_retry_backoff(Nanos base) { retry_backoff_ = base; }

 private:
  struct CallState {
    MethodId method = 0;
    Buffer request;
    Callback cb;
    Nanos abs_deadline = 0;
    std::uint32_t attempt = 0;
  };

  Errc attempt(const std::shared_ptr<CallState>& s);
  /// Returns false when the next backoff step would overrun the deadline.
  bool schedule_retry(const std::shared_ptr<CallState>& s);

  core::Context& ctx_;
  net::NodeId server_;
  std::uint16_t port_;
  core::Channel* channel_ = nullptr;
  Rng rng_;
  Nanos retry_backoff_ = micros(50);
  std::uint64_t retries_ = 0;
};

}  // namespace xrdma::apps::erpc
