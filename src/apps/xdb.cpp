#include "apps/xdb.hpp"

#include <cstring>

namespace xrdma::apps {

namespace {
// Request payload: 1 byte opcode ('R' read page / 'W' log write).
constexpr std::uint8_t kOpRead = 'R';
constexpr std::uint8_t kOpWrite = 'W';
}  // namespace

XdbServer::XdbServer(testbed::Cluster& cluster, net::NodeId node,
                     XdbConfig cfg)
    : cfg_(cfg), ctx_(cluster.rnic(node), cluster.cm(), cfg.xrdma) {
  ctx_.listen(cfg_.port, [this](core::Channel& ch) {
    ch.set_on_msg([this](core::Channel& c, core::Msg&& m) {
      if (!m.is_rpc_req || m.payload.empty()) return;
      const std::uint8_t op = m.payload.data() ? m.payload.data()[0] : kOpRead;
      if (op == kOpRead) {
        ++reads_;
        c.reply(m.rpc_id, Buffer::synthetic(cfg_.page_size));
      } else {
        ++writes_;
        c.reply(m.rpc_id, Buffer::make(8));  // commit LSN
      }
    });
  });
  ctx_.start_polling_loop();
}

XdbClient::XdbClient(testbed::Cluster& cluster, net::NodeId node,
                     net::NodeId server, XdbConfig cfg)
    : cfg_(cfg), ctx_(cluster.rnic(node), cluster.cm(), cfg.xrdma),
      server_(server) {
  ctx_.start_polling_loop();
}

void XdbClient::start(std::function<void()> ready) {
  ctx_.connect(server_, cfg_.port,
               [this, ready = std::move(ready)](Result<core::Channel*> r) {
                 if (!r.ok()) return;
                 channel_ = r.value();
                 running_ = true;
                 for (int i = 0; i < cfg_.concurrency; ++i) run_txn();
                 if (ready) ready();
               });
}

void XdbClient::run_txn() {
  if (!running_ || !channel_ || !channel_->usable()) return;
  const Nanos started = ctx_.engine().now();

  Buffer read_req = Buffer::make(16);
  read_req.data()[0] = kOpRead;
  channel_->call(std::move(read_req), [this, started](Result<core::Msg> r) {
    if (!r.ok()) {
      ++aborted_;
      run_txn();
      return;
    }
    // Read done; append the redo log record.
    Buffer write_req = Buffer::make(cfg_.log_write_size);
    write_req.data()[0] = kOpWrite;
    channel_->call(std::move(write_req),
                   [this, started](Result<core::Msg> w) {
                     if (w.ok()) {
                       ++committed_;
                       const Nanos now = ctx_.engine().now();
                       latency_.record(now - started);
                       tps_meter_.add(now, 1);
                     } else {
                       ++aborted_;
                     }
                     run_txn();
                   });
  });
}

double XdbClient::tps_now() {
  return tps_meter_.bytes_per_sec(ctx_.engine().now());
}

}  // namespace xrdma::apps
