#include "apps/erpc.hpp"

#include <cstring>

#include "common/backoff.hpp"

namespace xrdma::apps::erpc {

namespace {
// RPC envelope: [varint method][varint status][payload...]. Status 0 = ok
// on responses (requests always carry 0).
Buffer envelope(MethodId method, std::uint32_t status, const Buffer& payload) {
  WireWriter w;
  w.put_u32(method);
  w.put_u32(status);
  Buffer head = w.finish();
  Buffer out = Buffer::make(head.size() + payload.size());
  std::memcpy(out.data(), head.data(), head.size());
  if (payload.size() > 0 && payload.data()) {
    std::memcpy(out.data() + head.size(), payload.data(), payload.size());
  }
  return out;
}

bool open_envelope(const Buffer& wire, MethodId& method, std::uint32_t& status,
                   Buffer& payload) {
  WireReader r(wire);
  const auto m = r.varint();
  const auto s = r.varint();
  if (!m || !s) return false;
  method = static_cast<MethodId>(*m);
  status = static_cast<std::uint32_t>(*s);
  // Remaining bytes are the payload; WireReader doesn't expose position,
  // so re-derive it from a second scan.
  WireWriter probe;
  probe.put_u32(method);
  probe.put_u32(status);
  const std::size_t header = probe.size();
  payload = Buffer::make(wire.size() - header);
  if (payload.size() > 0) {
    std::memcpy(payload.data(), wire.data() + header, payload.size());
  }
  return true;
}
}  // namespace

// ---------------------------------------------------------------------------
// Wire codec.

void WireWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::put_bytes(const std::uint8_t* data, std::size_t len) {
  put_varint(len);
  bytes_.insert(bytes_.end(), data, data + len);
}

Buffer WireWriter::finish() const {
  Buffer b = Buffer::make(bytes_.size());
  if (!bytes_.empty()) std::memcpy(b.data(), bytes_.data(), bytes_.size());
  return b;
}

std::optional<std::uint64_t> WireReader::varint() {
  if (!ok_ || !data_) {
    ok_ = false;
    return std::nullopt;
  }
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < size_ && shift <= 63) {
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  ok_ = false;
  return std::nullopt;
}

std::optional<std::string> WireReader::string() {
  const auto len = varint();
  if (!len || pos_ + *len > size_) {
    ok_ = false;
    return std::nullopt;
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(*len));
  pos_ += static_cast<std::size_t>(*len);
  return s;
}

// ---------------------------------------------------------------------------
// Server.

Server::Server(core::Context& ctx, std::uint16_t port) : ctx_(ctx) {
  ctx_.listen(port, [this](core::Channel& ch) {
    ch.set_on_msg([this](core::Channel& c, core::Msg&& m) {
      dispatch(c, std::move(m));
    });
  });
}

void Server::register_method(MethodId id, Handler handler) {
  methods_[id] = std::move(handler);
}

void Server::dispatch(core::Channel& ch, core::Msg&& msg) {
  if (!msg.is_rpc_req) return;
  MethodId method = 0;
  std::uint32_t status = 0;
  Buffer payload;
  if (!open_envelope(msg.payload, method, status, payload)) {
    ch.reply(msg.rpc_id,
             envelope(0, static_cast<std::uint32_t>(Errc::bad_message), {}));
    return;
  }
  auto it = methods_.find(method);
  if (it == methods_.end()) {
    ++unknown_;
    ch.reply(msg.rpc_id,
             envelope(method, static_cast<std::uint32_t>(Errc::not_found), {}));
    return;
  }
  // Deadline-aware shedding: the request header carried the client's
  // remaining budget; if it can no longer cover a typical service time the
  // reply would arrive after the client gave up, so the work is wasted —
  // answer overloaded immediately and let the client back off.
  if (msg.has_deadline) {
    const Nanos est = estimated_service_time();
    if (est > 0 && msg.deadline_left < est) {
      ++shed_;
      ch.reply(msg.rpc_id,
               envelope(method, static_cast<std::uint32_t>(Errc::overloaded),
                        {}));
      return;
    }
  }
  ++served_;
  Call call;
  call.request = std::move(payload);
  call.peer = ch.peer_node();
  const std::uint64_t rpc_id = msg.rpc_id;
  const std::uint64_t chan_id = ch.id();
  // Traced request: the response inherits its trace id so the latency
  // decomposition sees one chain across request -> handler -> response
  // (including large responses, which ride Read-replace-Write).
  const std::uint64_t trace_id = msg.traced ? msg.trace_id : 0;
  core::Context* ctx = &ctx_;
  const Nanos t0 = ctx_.engine().now();
  // The handler may respond asynchronously; route through ids so a closed
  // channel degrades to a dropped reply instead of a dangling pointer.
  call.respond = [this, ctx, chan_id, rpc_id, method, trace_id, t0](Buffer rsp) {
    service_time_.record(ctx->engine().now() - t0);
    for (core::Channel* c : ctx->channels()) {
      if (c->id() == chan_id && c->usable()) {
        c->reply(rpc_id, envelope(method, 0, rsp), trace_id);
        return;
      }
    }
  };
  call.respond_error = [this, ctx, chan_id, rpc_id, method, trace_id,
                        t0](Errc e) {
    service_time_.record(ctx->engine().now() - t0);
    for (core::Channel* c : ctx->channels()) {
      if (c->id() == chan_id && c->usable()) {
        c->reply(rpc_id, envelope(method, static_cast<std::uint32_t>(e), {}),
                 trace_id);
        return;
      }
    }
  };
  it->second(std::move(call));
}

Nanos Server::estimated_service_time() const {
  // Need a few samples before trusting the estimate; until then admit
  // everything (a cold server that sheds is worse than a slow one).
  if (service_time_.count() < 8) return 0;
  return service_time_.percentile(50);
}

// ---------------------------------------------------------------------------
// Client.

ClientStub::ClientStub(core::Context& ctx, net::NodeId server,
                       std::uint16_t port)
    : ctx_(ctx),
      server_(server),
      port_(port),
      // Deterministic per-stub jitter stream: same topology, same run.
      rng_(0x517cc1b727220a95ULL ^ (static_cast<std::uint64_t>(server) << 16) ^
           port) {}

void ClientStub::connect(std::function<void(Errc)> ready) {
  ctx_.connect(server_, port_,
               [this, ready = std::move(ready)](Result<core::Channel*> r) {
                 if (r.ok()) channel_ = r.value();
                 if (ready) ready(r.ok() ? Errc::ok : r.error());
               });
}

Errc ClientStub::call(MethodId method, Buffer request, Callback cb,
                      Nanos deadline) {
  if (!connected()) return Errc::unavailable;
  auto s = std::make_shared<CallState>();
  s->method = method;
  s->request = std::move(request);
  s->cb = std::move(cb);
  s->abs_deadline = ctx_.engine().now() + deadline;
  const Errc rc = attempt(s);
  // The very first enqueue can bounce off the bounded tx queue; retrying
  // behind backoff keeps the call alive (the caller sees Errc::ok and the
  // outcome arrives through the callback, like any other async failure).
  if (rc == Errc::would_block && schedule_retry(s)) return Errc::ok;
  return rc;
}

Errc ClientStub::attempt(const std::shared_ptr<CallState>& s) {
  const Nanos remaining = s->abs_deadline - ctx_.engine().now();
  if (remaining <= 0) return Errc::timed_out;
  return channel_->call(
      envelope(s->method, 0, s->request),
      [this, s](Result<core::Msg> r) {
        if (!r.ok()) {
          s->cb(r.error());
          return;
        }
        MethodId method_out = 0;
        std::uint32_t status = 0;
        Buffer payload;
        if (!open_envelope(r.value().payload, method_out, status, payload)) {
          s->cb(Errc::bad_message);
          return;
        }
        if (status != 0) {
          const Errc e = static_cast<Errc>(status);
          // Server shed the request (deadline-aware overload control):
          // back off and retry while the budget lasts.
          if (e == Errc::overloaded && schedule_retry(s)) return;
          s->cb(e);
          return;
        }
        s->cb(std::move(payload));
      },
      remaining);
}

bool ClientStub::schedule_retry(const std::shared_ptr<CallState>& s) {
  ++s->attempt;
  const Nanos delay = backoff_with_jitter(retry_backoff_, s->attempt, rng_);
  if (ctx_.engine().now() + delay >= s->abs_deadline) return false;
  ++retries_;
  ctx_.engine().schedule_after(delay, [this, s] {
    if (!connected()) {
      s->cb(Errc::unavailable);
      return;
    }
    const Errc rc = attempt(s);
    if (rc == Errc::ok) return;
    if (rc == Errc::would_block && schedule_retry(s)) return;
    s->cb(rc);
  });
  return true;
}

}  // namespace xrdma::apps::erpc
