#include "apps/pangu.hpp"

#include <memory>

namespace xrdma::apps {

ChunkServer::ChunkServer(testbed::Cluster& cluster, net::NodeId node,
                         PanguConfig cfg)
    : ctx_(cluster.rnic(node), cluster.cm(), cfg.xrdma) {
  ctx_.listen(cfg.chunk_port, [this](core::Channel& ch) {
    ch.set_on_msg([this](core::Channel& c, core::Msg&& m) {
      if (!m.is_rpc_req) return;
      ++writes_handled_;
      bytes_handled_ += m.payload.size();
      // Persisting the chunk is outside the reproduction's scope; the ack
      // is what the replication protocol needs.
      c.reply(m.rpc_id, Buffer::make(8));
    });
  });
  ctx_.start_polling_loop();
}

BlockServer::BlockServer(testbed::Cluster& cluster, net::NodeId node,
                         std::vector<net::NodeId> chunk_nodes, PanguConfig cfg)
    : cfg_(cfg),
      ctx_(cluster.rnic(node), cluster.cm(), cfg.xrdma),
      chunk_nodes_(std::move(chunk_nodes)),
      rng_(0x9a6b ^ node) {
  ctx_.start_polling_loop();
}

void BlockServer::start(std::function<void()> ready) {
  auto remaining = std::make_shared<int>(static_cast<int>(chunk_nodes_.size()));
  if (*remaining == 0) {
    if (ready) ready();
    return;
  }
  for (const net::NodeId chunk : chunk_nodes_) {
    ctx_.connect(chunk, cfg_.chunk_port,
                 [this, remaining, ready](Result<core::Channel*> r) {
                   if (r.ok()) channels_.push_back(r.value());
                   if (--*remaining == 0 && ready) ready();
                 });
  }
}

void BlockServer::rolling_reconnect(std::function<void()> done) {
  // New-generation connections come up first (this is when the QP number
  // ramps in Fig. 11a); the old generation is closed only after every
  // replacement is live, so the write path never loses replica targets.
  struct Upgrade {
    std::vector<core::Channel*> fresh;
    std::size_t remaining;
    std::function<void()> done;
  };
  auto up = std::make_shared<Upgrade>();
  up->remaining = channels_.size();
  up->done = std::move(done);
  if (up->remaining == 0) {
    if (up->done) up->done();
    return;
  }
  up->fresh.resize(channels_.size(), nullptr);
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const net::NodeId node = channels_[i]->peer_node();
    ctx_.connect(node, cfg_.chunk_port,
                 [this, up, i](Result<core::Channel*> r) {
                   if (r.ok()) up->fresh[i] = r.value();
                   if (--up->remaining > 0) return;
                   for (std::size_t j = 0; j < channels_.size(); ++j) {
                     if (!up->fresh[j]) continue;
                     core::Channel* old = channels_[j];
                     channels_[j] = up->fresh[j];
                     old->close();
                   }
                   if (up->done) up->done();
                 });
  }
}

void BlockServer::write(std::uint32_t size,
                        std::function<void(Errc, Nanos)> done) {
  const int replicas =
      std::min<int>(cfg_.replicas, static_cast<int>(channels_.size()));
  if (replicas == 0) {
    done(Errc::unavailable, 0);
    return;
  }
  struct WriteState {
    int remaining;
    Errc first_error = Errc::ok;
    Nanos started;
    std::function<void(Errc, Nanos)> done;
  };
  auto state = std::make_shared<WriteState>();
  state->remaining = replicas;
  state->started = ctx_.engine().now();
  state->done = std::move(done);

  // Pick `replicas` distinct chunk servers starting at a random offset
  // (round-robin placement like production chunk allocation).
  const std::size_t base = rng_.next_below(channels_.size());
  for (int i = 0; i < replicas; ++i) {
    core::Channel* ch = channels_[(base + static_cast<std::size_t>(i)) %
                                  channels_.size()];
    const Errc rc = ch->call(
        Buffer::synthetic(size),
        [this, state](Result<core::Msg> r) {
          if (!r.ok() && state->first_error == Errc::ok) {
            state->first_error = r.error();
          }
          if (--state->remaining == 0) {
            if (state->first_error == Errc::ok) ++writes_completed_;
            state->done(state->first_error,
                        ctx_.engine().now() - state->started);
          }
        },
        millis(500));
    if (rc != Errc::ok) {
      if (state->first_error == Errc::ok) state->first_error = rc;
      if (--state->remaining == 0) {
        state->done(state->first_error, ctx_.engine().now() - state->started);
      }
    }
  }
}

EssdFrontend::EssdFrontend(BlockServer& block, EssdConfig cfg)
    : block_(block), cfg_(cfg), rng_(cfg.seed) {}

void EssdFrontend::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void EssdFrontend::stop() { running_ = false; }

void EssdFrontend::tick() {
  if (!running_) return;
  ++issued_;
  block_.write(cfg_.write_size, [this](Errc rc, Nanos latency) {
    if (rc == Errc::ok) {
      ++completed_;
      latency_.record(latency);
      const Nanos now = block_.ctx().engine().now();
      op_meter_.add(now, 1);
      byte_meter_.add(now, cfg_.write_size);
    } else {
      ++errors_;
    }
  });
  // Open-loop Poisson arrivals at the target IOPS.
  const double mean_gap_ns = 1e9 / cfg_.target_iops;
  const Nanos gap =
      std::max<Nanos>(1, static_cast<Nanos>(rng_.exponential(mean_gap_ns)));
  block_.ctx().engine().schedule_after(gap, [this] { tick(); });
}

double EssdFrontend::iops_now() {
  // RateMeter tracks "bytes"; here each op adds 1, so bytes/sec == ops/sec.
  return op_meter_.bytes_per_sec(block_.ctx().engine().now());
}

double EssdFrontend::goodput_gbps_now() {
  return byte_meter_.gbps(block_.ctx().engine().now());
}

}  // namespace xrdma::apps
