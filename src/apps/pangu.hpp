// Mini-Pangu: the distributed-storage substrate the paper's production
// workloads run on (§II-C).
//
// Pangu has two components per machine: block servers receive data from
// the front-end (ESSD virtual machines) and distribute 2-3 copies to
// chunk servers on different machines over full-mesh RDMA. Here:
//   - ChunkServer: accepts replica-write RPCs over X-RDMA and acks them;
//   - BlockServer: connects to every chunk server (the full mesh), and for
//     each front-end write picks `replicas` distinct chunk servers,
//     replicates the payload in parallel, and completes the write when all
//     replicas ack;
//   - EssdFrontend: an open-loop writer modelling the VM side, issuing
//     writes at a target IOPS with a configurable payload size (the paper
//     uses 128 KB for the Fig. 8 experiment).
//
// This reproduces the incast-prone traffic pattern behind Figs. 3/8/11/12.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "common/rate.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "testbed/cluster.hpp"

namespace xrdma::apps {

struct PanguConfig {
  std::uint16_t chunk_port = 8100;
  int replicas = 3;
  core::Config xrdma;  // middleware configuration for every server
};

class ChunkServer {
 public:
  ChunkServer(testbed::Cluster& cluster, net::NodeId node, PanguConfig cfg);

  core::Context& ctx() { return ctx_; }
  net::NodeId node() const { return ctx_.node(); }
  std::uint64_t writes_handled() const { return writes_handled_; }
  std::uint64_t bytes_handled() const { return bytes_handled_; }

 private:
  core::Context ctx_;
  std::uint64_t writes_handled_ = 0;
  std::uint64_t bytes_handled_ = 0;
};

class BlockServer {
 public:
  BlockServer(testbed::Cluster& cluster, net::NodeId node,
              std::vector<net::NodeId> chunk_nodes, PanguConfig cfg);

  /// Establish the full mesh to all chunk servers; `ready` fires when
  /// every connection is up (or failed — check connected_chunks()).
  void start(std::function<void()> ready);

  /// Replicate one `size`-byte write to `replicas` distinct chunk servers;
  /// `done` receives the end-to-end latency (or the first error).
  void write(std::uint32_t size,
             std::function<void(Errc, Nanos latency)> done);

  core::Context& ctx() { return ctx_; }
  std::size_t connected_chunks() const { return channels_.size(); }
  std::uint64_t writes_completed() const { return writes_completed_; }

  /// Online upgrade (Fig. 11): one chunk connection at a time, establish
  /// the replacement first, swap it in, then close the old channel — the
  /// front-end traffic never loses a replica target.
  void rolling_reconnect(std::function<void()> done);

 private:
  PanguConfig cfg_;
  core::Context ctx_;
  std::vector<net::NodeId> chunk_nodes_;
  std::vector<core::Channel*> channels_;
  Rng rng_;
  std::uint64_t writes_completed_ = 0;
};

struct EssdConfig {
  double target_iops = 3000;
  std::uint32_t write_size = 128 * 1024;
  std::uint64_t seed = 13;
};

class EssdFrontend {
 public:
  EssdFrontend(BlockServer& block, EssdConfig cfg);

  void start();
  void stop();

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t errors() const { return errors_; }
  const Histogram& latency() const { return latency_; }
  /// Completion rate over the recent window (Fig. 8's IOPS series).
  double iops_now();
  double goodput_gbps_now();

 private:
  void tick();

  BlockServer& block_;
  EssdConfig cfg_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t errors_ = 0;
  Histogram latency_;
  RateMeter op_meter_{millis(50)};
  RateMeter byte_meter_{millis(50)};
};

}  // namespace xrdma::apps
