// ibverbs-flavoured RAII facade over the RNIC model.
//
// Pd/Mr/Cq/Qp own their device resources and release them on destruction;
// everything forwards to rnic::Rnic. The middleware, the baselines, and the
// loc_comparison examples all program against this layer — it is the
// "native RDMA library" of the reproduction.
#pragma once

#include <memory>
#include <utility>

#include "rnic/rnic.hpp"

namespace xrdma::verbs {

using rnic::CqId;
using xrdma::Errc;
using rnic::MrInfo;
using rnic::Opcode;
using rnic::QpAttr;
using rnic::QpCaps;
using rnic::QpNum;
using rnic::QpState;
using rnic::QpType;
using rnic::RecvWr;
using rnic::SendWr;
using rnic::Sge;
using rnic::SrqId;
using rnic::Wc;
using rnic::WcOpcode;

class Mr {
 public:
  Mr() = default;
  Mr(rnic::Rnic* nic, MrInfo info) : nic_(nic), info_(info) {}
  ~Mr() { reset(); }
  Mr(Mr&& o) noexcept { *this = std::move(o); }
  Mr& operator=(Mr&& o) noexcept {
    if (this != &o) {
      reset();
      nic_ = std::exchange(o.nic_, nullptr);
      info_ = std::exchange(o.info_, MrInfo{});
    }
    return *this;
  }
  Mr(const Mr&) = delete;
  Mr& operator=(const Mr&) = delete;

  bool valid() const { return nic_ != nullptr; }
  const MrInfo& info() const { return info_; }
  std::uint64_t addr() const { return info_.addr; }
  std::uint64_t size() const { return info_.size; }
  std::uint32_t lkey() const { return info_.lkey; }
  std::uint32_t rkey() const { return info_.rkey; }

  /// Host pointer into the registered region (nullptr for synthetic MRs).
  std::uint8_t* data(std::uint64_t offset = 0, std::uint64_t len = 0) {
    if (!nic_) return nullptr;
    if (len == 0) len = info_.size - offset;
    return nic_->mr_ptr(info_.addr + offset, len);
  }

  void reset() {
    if (nic_) nic_->dereg_mr(info_.lkey);
    nic_ = nullptr;
  }

 private:
  rnic::Rnic* nic_ = nullptr;
  MrInfo info_;
};

class Cq {
 public:
  Cq() = default;
  Cq(rnic::Rnic* nic, CqId id) : nic_(nic), id_(id) {}
  ~Cq() { reset(); }
  Cq(Cq&& o) noexcept { *this = std::move(o); }
  Cq& operator=(Cq&& o) noexcept {
    if (this != &o) {
      reset();
      nic_ = std::exchange(o.nic_, nullptr);
      id_ = std::exchange(o.id_, rnic::kInvalidId);
    }
    return *this;
  }
  Cq(const Cq&) = delete;
  Cq& operator=(const Cq&) = delete;

  bool valid() const { return nic_ != nullptr; }
  CqId id() const { return id_; }
  int poll(Wc* out, int max) { return nic_ ? nic_->poll_cq(id_, out, max) : -1; }
  void arm(std::function<void()> on_event) {
    if (nic_) nic_->arm_cq(id_, std::move(on_event));
  }

  void reset() {
    if (nic_) nic_->destroy_cq(id_);
    nic_ = nullptr;
  }

 private:
  rnic::Rnic* nic_ = nullptr;
  CqId id_ = rnic::kInvalidId;
};

class Qp {
 public:
  Qp() = default;
  Qp(rnic::Rnic* nic, QpNum num) : nic_(nic), num_(num) {}
  ~Qp() { reset(); }
  Qp(Qp&& o) noexcept { *this = std::move(o); }
  Qp& operator=(Qp&& o) noexcept {
    if (this != &o) {
      reset();
      nic_ = std::exchange(o.nic_, nullptr);
      num_ = std::exchange(o.num_, rnic::kInvalidId);
    }
    return *this;
  }
  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  bool valid() const { return nic_ != nullptr; }
  QpNum num() const { return num_; }
  rnic::Rnic* nic() { return nic_; }
  QpState state() const { return nic_ ? nic_->qp_state(num_) : QpState::error; }

  Errc modify(const QpAttr& attr) {
    return nic_ ? nic_->modify_qp(num_, attr) : Errc::not_found;
  }
  Errc post_send(const SendWr& wr) {
    return nic_ ? nic_->post_send(num_, wr) : Errc::not_found;
  }
  /// Chained post (ibv_post_send with a linked wr list): one doorbell for
  /// the whole chain, all-or-nothing admission.
  Errc post_send_batch(const SendWr* wrs, std::size_t count) {
    return nic_ ? nic_->post_send(num_, wrs, count) : Errc::not_found;
  }
  Errc post_recv(const RecvWr& wr) {
    return nic_ ? nic_->post_recv(num_, wr) : Errc::not_found;
  }

  /// Releases the underlying QP *without* destroying it and returns its
  /// number — the QP-cache takes ownership (§IV-E).
  QpNum release() {
    nic_ = nullptr;
    return std::exchange(num_, rnic::kInvalidId);
  }

  void reset() {
    if (nic_) nic_->destroy_qp(num_);
    nic_ = nullptr;
  }

 private:
  rnic::Rnic* nic_ = nullptr;
  QpNum num_ = rnic::kInvalidId;
};

/// Protection-domain-ish resource factory bound to one RNIC.
class Pd {
 public:
  explicit Pd(rnic::Rnic& nic) : nic_(&nic) {}

  rnic::Rnic& nic() { return *nic_; }

  Mr reg_mr(std::uint64_t size, bool real_memory = true) {
    return Mr(nic_, nic_->reg_mr(size, real_memory));
  }
  Cq create_cq(std::uint32_t depth) { return Cq(nic_, nic_->create_cq(depth)); }
  Qp create_qp(QpType type, Cq& send_cq, Cq& recv_cq, QpCaps caps = {},
               SrqId srq = rnic::kInvalidId) {
    return Qp(nic_, nic_->create_qp(type, send_cq.id(), recv_cq.id(), caps, srq));
  }
  /// Re-adopt a QP number released to a cache earlier.
  Qp adopt_qp(QpNum num) { return Qp(nic_, num); }

 private:
  rnic::Rnic* nic_;
};

}  // namespace xrdma::verbs
