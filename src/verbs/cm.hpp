// rdma_cm-style connection management with an explicit control-plane cost
// model.
//
// The paper (§III issue 3, §VII-C) measures RDMA connection establishment
// at 3946 us — dominated by QP creation and the RESET->INIT->RTR->RTS
// transitions — versus ~100 us for TCP, and shows the QP cache cutting it
// to 2451 us by skipping creation. Those costs live here as CmCosts; the
// data plane is untouched by them.
//
// CM messages travel out-of-band (production bootstraps connections over a
// management network), modelled as fixed msg_delay hops.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace xrdma::verbs::cm {

struct CmCosts {
  Nanos qp_create = micros(1495);   // saved entirely by the QP cache
  Nanos modify_init = micros(300);
  Nanos modify_rtr = micros(1200);
  Nanos modify_rts = micros(701);
  Nanos accept_cost = micros(200);  // server-side processing
  Nanos msg_delay = micros(25);     // REQ / REP out-of-band hop
  Nanos connect_timeout = millis(5);  // REQ unanswered (peer host down)

  Nanos total_with_create() const {
    return qp_create + modify_init + modify_rtr + modify_rts + accept_cost +
           2 * msg_delay;
  }
  Nanos total_reused() const { return total_with_create() - qp_create; }
};

/// A connected endpoint as produced by CM: an RTS queue pair plus the
/// peer's handshake payload.
struct Established {
  Qp qp;
  net::NodeId peer_node = net::kInvalidNode;
  QpNum peer_qp = rnic::kInvalidId;
  Buffer private_data;  // what the peer sent in REQ/REP
};

using ConnectCallback = std::function<void(Result<Established>)>;

/// Server-side resource recipe: how to build the QP for an incoming
/// connection, and the private data to return in the REP.
struct AcceptSpec {
  CqId send_cq = rnic::kInvalidId;
  CqId recv_cq = rnic::kInvalidId;
  QpCaps caps;
  SrqId srq = rnic::kInvalidId;
  std::uint8_t retry_count = 7;
  std::uint8_t rnr_retry = 3;
};

class CmService;

class Listener {
 public:
  /// `on_accept` fires for each established server-side connection.
  /// `make_spec` is consulted per connection (may vary CQs across them);
  /// `make_private_data` supplies the REP payload given the REQ payload.
  Listener(CmService& svc, rnic::Rnic& nic, std::uint16_t port,
           std::function<AcceptSpec()> make_spec,
           std::function<Buffer(const Buffer& req)> make_private_data,
           std::function<void(Established)> on_accept);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  net::NodeId node() const;
  std::uint16_t port() const { return port_; }
  /// Optionally supply cached (RESET) QPs for accepts, mirroring the
  /// client-side reuse path.
  void set_qp_supplier(std::function<std::optional<QpNum>()> supplier) {
    qp_supplier_ = std::move(supplier);
  }
  /// Optional admission gate, consulted when accept processing starts.
  /// Returning an error refuses the connection with a prompt REP(reject)
  /// carrying that code — the lifecycle plane uses this so a draining
  /// node bounces new channels at the CM instead of accepting a QP it is
  /// about to tear down.
  void set_admission_gate(std::function<std::optional<Errc>()> gate) {
    admission_gate_ = std::move(gate);
  }

 private:
  friend class CmService;
  CmService& svc_;
  rnic::Rnic& nic_;
  std::uint16_t port_;
  std::function<AcceptSpec()> make_spec_;
  std::function<Buffer(const Buffer&)> make_private_data_;
  std::function<void(Established)> on_accept_;
  std::function<std::optional<QpNum>()> qp_supplier_;
  std::function<std::optional<Errc>()> admission_gate_;
};

struct ConnectOptions {
  CqId send_cq = rnic::kInvalidId;
  CqId recv_cq = rnic::kInvalidId;
  QpCaps caps;
  SrqId srq = rnic::kInvalidId;
  std::uint8_t retry_count = 7;
  std::uint8_t rnr_retry = 3;
  Buffer private_data;
  /// A cached QP in RESET state to reuse instead of creating one — the
  /// QP-cache fast path. Must belong to the connecting RNIC. On a failed
  /// connect a reused QP is returned to RESET (never destroyed), so the
  /// caller can put it back into its cache.
  std::optional<QpNum> reuse_qp;
};

/// The out-of-band CM "network": one per simulation, created by the
/// testbed. Tracks listeners across all hosts.
class CmService {
 public:
  explicit CmService(sim::Engine& engine, CmCosts costs = {})
      : engine_(engine), costs_(costs) {}

  const CmCosts& costs() const { return costs_; }
  sim::Engine& engine() { return engine_; }

  void connect(rnic::Rnic& nic, net::NodeId dst, std::uint16_t port,
               ConnectOptions opts, ConnectCallback cb);

  /// Fault injection (Filter, §VI-C): consulted per connect attempt.
  /// Returning an error fails the attempt — Errc::timed_out models an
  /// unanswered REQ (charged connect_timeout); anything else is a prompt
  /// REP(reject).
  using FaultHook = std::function<std::optional<Errc>(
      net::NodeId src, net::NodeId dst, std::uint16_t port)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  friend class Listener;
  void add_listener(Listener* l);
  void remove_listener(Listener* l);

  sim::Engine& engine_;
  CmCosts costs_;
  std::map<std::pair<net::NodeId, std::uint16_t>, Listener*> listeners_;
  FaultHook fault_hook_;
};

}  // namespace xrdma::verbs::cm
