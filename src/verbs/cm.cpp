#include "verbs/cm.hpp"

namespace xrdma::verbs::cm {

namespace {
/// A failed connect abandons the client QP: a caller-supplied (cached) QP
/// goes back to RESET so it can be re-cached; a QP we created is destroyed.
void abandon_qp(rnic::Rnic& nic, bool reused, QpNum qpn) {
  if (qpn == rnic::kInvalidId) return;
  if (reused) {
    QpAttr attr;
    attr.state = QpState::reset;
    nic.modify_qp(qpn, attr);
  } else {
    nic.destroy_qp(qpn);
  }
}
}  // namespace

Listener::Listener(CmService& svc, rnic::Rnic& nic, std::uint16_t port,
                   std::function<AcceptSpec()> make_spec,
                   std::function<Buffer(const Buffer&)> make_private_data,
                   std::function<void(Established)> on_accept)
    : svc_(svc),
      nic_(nic),
      port_(port),
      make_spec_(std::move(make_spec)),
      make_private_data_(std::move(make_private_data)),
      on_accept_(std::move(on_accept)) {
  svc_.add_listener(this);
}

Listener::~Listener() { svc_.remove_listener(this); }

net::NodeId Listener::node() const { return nic_.node(); }

void CmService::add_listener(Listener* l) {
  listeners_[{l->node(), l->port()}] = l;
}

void CmService::remove_listener(Listener* l) {
  auto it = listeners_.find({l->node(), l->port()});
  if (it != listeners_.end() && it->second == l) listeners_.erase(it);
}

void CmService::connect(rnic::Rnic& nic, net::NodeId dst, std::uint16_t port,
                        ConnectOptions opts, ConnectCallback cb) {
  // Phase 1 (client): QP creation — skipped entirely when a cached QP is
  // supplied — followed by the RESET->INIT transition.
  const bool reusing = opts.reuse_qp.has_value();
  Nanos client_prep = costs_.modify_init + (reusing ? 0 : costs_.qp_create);

  auto shared = std::make_shared<ConnectOptions>(std::move(opts));
  engine_.schedule_after(client_prep, [this, &nic, dst, port, shared,
                                       cb = std::move(cb)]() mutable {
    QpNum client_qpn;
    if (shared->reuse_qp) {
      client_qpn = *shared->reuse_qp;
      if (nic.qp_state(client_qpn) != QpState::reset) {
        cb(Errc::invalid_argument);
        return;
      }
    } else {
      client_qpn = nic.create_qp(QpType::rc, shared->send_cq, shared->recv_cq,
                                 shared->caps, shared->srq);
    }
    QpAttr init;
    init.state = QpState::init;
    nic.modify_qp(client_qpn, init);
    const bool reused = shared->reuse_qp.has_value();

    // Injected control-plane faults (Filter, §VI-C): a refused attempt
    // costs the REQ/REP round trip, an unanswered one the full timeout.
    if (fault_hook_) {
      if (auto injected = fault_hook_(nic.node(), dst, port)) {
        const Errc rc = *injected;
        const Nanos penalty = rc == Errc::timed_out ? costs_.connect_timeout
                                                    : 2 * costs_.msg_delay;
        engine_.schedule_after(penalty, [&nic, reused, client_qpn, rc,
                                         cb = std::move(cb)] {
          abandon_qp(nic, reused, client_qpn);
          cb(rc);
        });
        return;
      }
    }

    // Phase 2: REQ hop to the listener.
    engine_.schedule_after(costs_.msg_delay, [this, &nic, dst, port, shared,
                                              client_qpn, reused,
                                              cb = std::move(cb)]() mutable {
      auto it = listeners_.find({dst, port});
      if (it == listeners_.end()) {
        // REP(reject) hop back.
        engine_.schedule_after(costs_.msg_delay, [&nic, reused, client_qpn,
                                                  cb = std::move(cb)] {
          abandon_qp(nic, reused, client_qpn);
          cb(Errc::connection_refused);
        });
        return;
      }
      Listener* listener = it->second;
      if (!listener->nic_.alive()) {
        // The listener's host is down: the REQ goes unanswered and the
        // connect times out instead of being rejected.
        engine_.schedule_after(costs_.connect_timeout, [&nic, reused,
                                                        client_qpn,
                                                        cb = std::move(cb)] {
          abandon_qp(nic, reused, client_qpn);
          cb(Errc::timed_out);
        });
        return;
      }

      // Phase 3 (server): accept processing, QP setup to RTS.
      engine_.schedule_after(
          costs_.accept_cost,
          [this, &nic, shared, client_qpn, listener,
           cb = std::move(cb)]() mutable {
            if (listener->admission_gate_) {
              if (auto refused = listener->admission_gate_()) {
                // The listener declines (e.g. graceful drain): REP(reject)
                // hop back so the connector learns promptly instead of
                // holding a half-open QP toward a node that is leaving.
                const Errc rc = *refused;
                const bool reused = shared->reuse_qp.has_value();
                engine_.schedule_after(
                    costs_.msg_delay,
                    [&nic, reused, client_qpn, rc, cb = std::move(cb)] {
                      abandon_qp(nic, reused, client_qpn);
                      cb(rc);
                    });
                return;
              }
            }
            const AcceptSpec spec = listener->make_spec_();
            rnic::Rnic& snic = listener->nic_;
            QpNum server_qpn = rnic::kInvalidId;
            if (listener->qp_supplier_) {
              if (auto cached = listener->qp_supplier_();
                  cached && snic.qp_state(*cached) == QpState::reset) {
                server_qpn = *cached;
              }
            }
            if (server_qpn == rnic::kInvalidId) {
              server_qpn = snic.create_qp(QpType::rc, spec.send_cq,
                                          spec.recv_cq, spec.caps, spec.srq);
            }
            QpAttr attr;
            attr.state = QpState::init;
            snic.modify_qp(server_qpn, attr);
            attr.state = QpState::rtr;
            attr.dest_node = nic.node();
            attr.dest_qp = client_qpn;
            attr.retry_count = spec.retry_count;
            attr.rnr_retry = spec.rnr_retry;
            snic.modify_qp(server_qpn, attr);
            attr.state = QpState::rts;
            snic.modify_qp(server_qpn, attr);

            Buffer rep_data = listener->make_private_data_
                                  ? listener->make_private_data_(shared->private_data)
                                  : Buffer{};

            // Server-side established notification fires once the client
            // has also reached RTS (post-RTU in real rdma_cm); we model it
            // at REP delivery time plus the client transitions.
            const Nanos client_finish =
                costs_.msg_delay + costs_.modify_rtr + costs_.modify_rts;
            engine_.schedule_after(
                client_finish,
                [this, &nic, shared, client_qpn, listener, server_qpn,
                 rep_data, cb = std::move(cb)]() mutable {
                  // Client transitions RTR -> RTS.
                  QpAttr cattr;
                  cattr.state = QpState::rtr;
                  cattr.dest_node = listener->nic_.node();
                  cattr.dest_qp = server_qpn;
                  cattr.retry_count = shared->retry_count;
                  cattr.rnr_retry = shared->rnr_retry;
                  nic.modify_qp(client_qpn, cattr);
                  cattr.state = QpState::rts;
                  nic.modify_qp(client_qpn, cattr);

                  Established server_side;
                  server_side.qp = Qp(&listener->nic_, server_qpn);
                  server_side.peer_node = nic.node();
                  server_side.peer_qp = client_qpn;
                  server_side.private_data = shared->private_data;
                  listener->on_accept_(std::move(server_side));

                  Established client_side;
                  client_side.qp = Qp(&nic, client_qpn);
                  client_side.peer_node = listener->nic_.node();
                  client_side.peer_qp = server_qpn;
                  client_side.private_data = rep_data;
                  cb(std::move(client_side));
                });
          });
    });
  });
}

}  // namespace xrdma::verbs::cm
