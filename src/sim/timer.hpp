// Cancelable one-shot and periodic timers over the engine.
//
// X-RDMA registers keepalive probes, statistic sampling and deadlock
// detection on a per-context timer (§IV-B); xr::Context owns a set of
// these.
#pragma once

#include <functional>
#include <utility>

#include "sim/engine.hpp"

namespace xrdma::sim {

/// Periodic timer. Fires `fn` every `period` until stopped or destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(Engine& engine, Nanos period, std::function<void()> fn)
      : engine_(engine), period_(period), fn_(std::move(fn)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    running_ = false;
    engine_.cancel(pending_);
  }

  bool running() const { return running_; }
  void set_period(Nanos period) { period_ = period; }
  Nanos period() const { return period_; }

 private:
  void arm() {
    pending_ = engine_.schedule_after(period_, [this] {
      if (!running_) return;
      arm();  // re-arm first so fn_ may stop() us
      fn_();
    });
  }

  Engine& engine_;
  Nanos period_;
  std::function<void()> fn_;
  bool running_ = false;
  Engine::EventId pending_;
};

/// One-shot timer that can be pushed back (used for idle-triggered probes:
/// every send defers the next keepalive).
class DeadlineTimer {
 public:
  DeadlineTimer(Engine& engine, std::function<void()> fn)
      : engine_(engine), fn_(std::move(fn)) {}

  ~DeadlineTimer() { cancel(); }
  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  /// (Re)arm to fire `delay` from now; replaces any pending deadline.
  void arm_after(Nanos delay) {
    engine_.cancel(pending_);
    pending_ = engine_.schedule_after(delay, [this] { fn_(); });
  }

  void cancel() { engine_.cancel(pending_); }
  bool armed() const { return pending_.armed(); }

 private:
  Engine& engine_;
  std::function<void()> fn_;
  Engine::EventId pending_;
};

}  // namespace xrdma::sim
