// Deterministic discrete-event engine.
//
// All substrates (fabric, RNIC model, TCP model) and all middleware timing
// run on this single-threaded engine. Events at equal timestamps fire in
// schedule order (a monotone sequence number breaks ties), so a given seed
// always produces bit-identical results — the property every experiment in
// EXPERIMENTS.md relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace xrdma::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Handle for cancellation. Default-constructed handles are inert.
  class EventId {
   public:
    EventId() = default;
    bool armed() const { return !node_.expired(); }

   private:
    friend class Engine;
    struct Node;
    explicit EventId(std::weak_ptr<Node> n) : node_(std::move(n)) {}
    std::weak_ptr<Node> node_;
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Nanos now() const { return now_; }

  EventId schedule_at(Nanos at, Callback cb);
  EventId schedule_after(Nanos delay, Callback cb) {
    return schedule_at(now_ + delay, cb ? std::move(cb) : Callback{});
  }

  /// Returns true if the event existed and had not fired.
  bool cancel(EventId& id);

  /// Run until the event queue drains (or stop() is called).
  void run();
  /// Run all events with timestamp <= t, then set now() = t.
  void run_until(Nanos t);
  void run_for(Nanos d) { run_until(now_ + d); }
  /// Fire the single next event; returns false if queue empty.
  bool step();
  /// Stop the current run()/run_until() after the in-flight callback.
  void stop() { stopped_ = true; }

  std::size_t pending() const { return live_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Conformance-harness hook (X-Check): invoked after every fired event,
  /// i.e. at the quiescent points between callbacks where cross-component
  /// invariants must hold. The hook may inspect any simulation state but
  /// must not schedule or cancel events. Pass nullptr to disable.
  void set_post_event_hook(Callback hook) { post_hook_ = std::move(hook); }

 private:
  struct EventId::Node {
    Nanos at;
    std::uint64_t seq;
    Callback cb;
  };
  using NodePtr = std::shared_ptr<EventId::Node>;

  struct Later {
    bool operator()(const NodePtr& a, const NodePtr& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  void fire(NodePtr node);

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  // scheduled and not yet fired/cancelled
  bool stopped_ = false;
  Callback post_hook_;
  std::priority_queue<NodePtr, std::vector<NodePtr>, Later> queue_;
};

}  // namespace xrdma::sim
