// Minimal coroutine support for writing application-level simulation code
// (examples, workloads, tests) in straight-line style:
//
//   sim::Task client(sim::Engine& eng, xr::Channel& ch) {
//     co_await sim::sleep(eng, micros(10));
//     ...
//   }
//
// Tasks are eagerly-started, detached coroutines; the frame lives until the
// body finishes. The library's own data plane stays callback-based — these
// exist for readable workload scripts.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace xrdma::sim {

struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Awaitable sleep.
struct SleepAwaiter {
  Engine& engine;
  Nanos delay;

  bool await_ready() const noexcept { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.schedule_after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline SleepAwaiter sleep(Engine& engine, Nanos delay) {
  return {engine, delay};
}

/// One-shot completion a callback can fulfil; co_await yields the value.
/// The awaiting coroutine frame must keep the Completion alive (declare it
/// as a local before handing `&completion` to the callback).
template <typename T>
class Completion {
 public:
  void complete(T value) {
    value_ = std::move(value);
    if (waiter_) {
      auto w = std::exchange(waiter_, nullptr);
      w.resume();
    }
  }

  bool done() const { return value_.has_value(); }

  auto operator co_await() {
    struct Awaiter {
      Completion& c;
      bool await_ready() const noexcept { return c.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) { c.waiter_ = h; }
      T await_resume() { return std::move(*c.value_); }
    };
    return Awaiter{*this};
  }

 private:
  std::optional<T> value_;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace xrdma::sim
