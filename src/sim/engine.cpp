#include "sim/engine.hpp"

#include <cassert>

namespace xrdma::sim {

Engine::EventId Engine::schedule_at(Nanos at, Callback cb) {
  assert(cb);
  if (at < now_) at = now_;  // never schedule into the past
  auto node = std::make_shared<EventId::Node>(
      EventId::Node{at, next_seq_++, std::move(cb)});
  queue_.push(node);
  ++live_;
  return EventId{std::weak_ptr<EventId::Node>(node)};
}

bool Engine::cancel(EventId& id) {
  auto node = id.node_.lock();
  id.node_.reset();
  if (!node || !node->cb) return false;
  node->cb = nullptr;  // fire() skips empty callbacks
  --live_;
  return true;
}

void Engine::fire(NodePtr node) {
  if (!node->cb) return;  // cancelled
  now_ = node->at;
  --live_;
  ++processed_;
  Callback cb = std::move(node->cb);
  node->cb = nullptr;
  // Release the node before invoking the callback: EventId::armed() is a
  // weak_ptr liveness probe, and a firing event is no longer armed. Holding
  // the node here made armed() read true *inside the event's own callback*,
  // so a handler that conditionally re-arms its timer (keepalive, memory
  // retry) would silently skip the re-arm and never fire again.
  node.reset();
  cb();
  if (post_hook_) post_hook_();
}

bool Engine::step() {
  while (!queue_.empty()) {
    NodePtr node = queue_.top();
    queue_.pop();
    if (!node->cb) continue;  // skip cancelled
    fire(std::move(node));
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Engine::run_until(Nanos t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top()->at <= t) {
    NodePtr node = queue_.top();
    queue_.pop();
    if (!node->cb) continue;
    fire(std::move(node));
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace xrdma::sim
